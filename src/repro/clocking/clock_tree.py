"""The forwarded clock tree: insertion delays, polarities and skew.

In the IC-NoC the clock is not balanced; it simply rides along the NoC
links, being reconditioned (and inverted — Fig. 6 of the paper) at every
pipeline stage and router stage. Two consequences modelled here:

* each clocked element has a **polarity** (which edge of the root clock it
  effectively triggers on), alternating hop by hop;
* the **skew** between two elements equals the difference of their clock
  insertion delays — fully determined by local segment delays, which is why
  timing can be validated link-by-link (the scalability argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, TopologyError


@dataclass
class ClockTreeNode:
    """One clocked element in the distribution tree.

    Attributes:
        name: unique identifier.
        parent: parent node name, or None for the root.
        segment_delay_ps: clock flight time from the parent to this node.
        inverts: whether this hop inverts the clock (True for every pipeline
            hop in the IC-NoC; False for same-phase fanout stubs).
    """

    name: str
    parent: str | None = None
    segment_delay_ps: float = 0.0
    inverts: bool = True
    children: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.segment_delay_ps < 0.0:
            raise ConfigurationError("segment delay must be >= 0")


class ClockTree:
    """A rooted tree of :class:`ClockTreeNode` with delay/polarity queries."""

    def __init__(self, root_name: str = "root"):
        root = ClockTreeNode(name=root_name, parent=None,
                             segment_delay_ps=0.0, inverts=False)
        self._nodes: dict[str, ClockTreeNode] = {root_name: root}
        self._root_name = root_name

    @property
    def root(self) -> ClockTreeNode:
        return self._nodes[self._root_name]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> ClockTreeNode:
        if name not in self._nodes:
            raise TopologyError(f"unknown clock node {name!r}")
        return self._nodes[name]

    def add(self, name: str, parent: str, segment_delay_ps: float,
            inverts: bool = True) -> ClockTreeNode:
        """Attach a new node under ``parent``."""
        if name in self._nodes:
            raise TopologyError(f"duplicate clock node {name!r}")
        parent_node = self.node(parent)
        node = ClockTreeNode(name=name, parent=parent,
                             segment_delay_ps=segment_delay_ps,
                             inverts=inverts)
        self._nodes[name] = node
        parent_node.children.append(name)
        return node

    def insertion_delay(self, name: str) -> float:
        """Total clock flight time from the root to ``name`` (ps)."""
        delay = 0.0
        node = self.node(name)
        while node.parent is not None:
            delay += node.segment_delay_ps
            node = self.node(node.parent)
        return delay

    def polarity(self, name: str) -> int:
        """Effective clock polarity: 0 = root phase, 1 = inverted.

        Counts the inverting hops from the root. Adjacent elements along an
        IC-NoC path always differ by one inversion, hence alternate edges.
        """
        inversions = 0
        node = self.node(name)
        while node.parent is not None:
            if node.inverts:
                inversions += 1
            node = self.node(node.parent)
        return inversions % 2

    def skew(self, a: str, b: str) -> float:
        """Clock arrival difference ``t(a) - t(b)`` in ps."""
        return self.insertion_delay(a) - self.insertion_delay(b)

    def depth(self, name: str) -> int:
        """Number of hops from the root."""
        hops = 0
        node = self.node(name)
        while node.parent is not None:
            hops += 1
            node = self.node(node.parent)
        return hops

    def names(self) -> list[str]:
        return list(self._nodes)

    def leaves(self) -> list[str]:
        return [name for name, node in self._nodes.items() if not node.children]

    def arrival_times(self) -> dict[str, float]:
        """Insertion delay of every node — used by the peak-current model."""
        return {name: self.insertion_delay(name) for name in self._nodes}

    def max_skew(self) -> float:
        """Largest pairwise skew across the whole tree.

        Note this *global* number is irrelevant for IC-NoC correctness (only
        per-hop skew matters); it is reported to contrast with balanced-tree
        design where it is the quantity that must be minimised.
        """
        arrivals = list(self.arrival_times().values())
        return max(arrivals) - min(arrivals)

    def validate_alternation(self) -> None:
        """Check every parent-child pair differs in polarity when inverting.

        Raises :class:`TopologyError` on an inconsistent tree (e.g. a
        non-inverting hop followed by elements that assume alternation).
        """
        for name, node in self._nodes.items():
            if node.parent is None:
                continue
            parent_pol = self.polarity(node.parent)
            expected = parent_pol ^ (1 if node.inverts else 0)
            if self.polarity(name) != expected:
                raise TopologyError(f"polarity inconsistency at {name!r}")
