"""Clock distribution: trees, phases, variation, and mesochronous baselines.

The IC-NoC distributes the clock along the branches of the NoC tree,
inverting it at every pipeline stage so that adjacent stages clock on
alternating edges. This package models that distribution (insertion delays,
per-node polarity, skew), the process-variation Monte Carlo used by the
graceful-degradation experiments, the power of competing distribution
styles, and the conventional mesochronous synchronizers the paper's
Section 2 compares against.
"""

from repro.clocking.clock_tree import ClockTree, ClockTreeNode
from repro.clocking.variation import VariationModel, perturb_channels
from repro.clocking.gating import GatingStats
from repro.clocking.mesochronous import (
    TwoFlopSynchronizer,
    PhaseDetectorScheme,
    ICNoCCrossing,
)
from repro.clocking.power import (
    forwarded_clock_power_mw,
    balanced_tree_clock_power_mw,
    ClockPowerBreakdown,
)

__all__ = [
    "ClockTree",
    "ClockTreeNode",
    "VariationModel",
    "perturb_channels",
    "GatingStats",
    "TwoFlopSynchronizer",
    "PhaseDetectorScheme",
    "ICNoCCrossing",
    "forwarded_clock_power_mw",
    "balanced_tree_clock_power_mw",
    "ClockPowerBreakdown",
]
