"""Clock distribution power: balanced global tree vs the integrated clock.

The paper's Sections 1-2 argue that a globally synchronous clock needs
"large power hungry buffers" to match branch delays, while a mesochronous
forwarded clock "significantly reduces" distribution power because those
skew-matching buffers are avoided, and the IC-NoC's flow control gates the
clock stage by stage when the network is idle.

The model is deliberately simple and transparent: switched capacitance
times V^2 times f. A balanced tree pays (a) the full chip-spanning wire
capacitance, (b) a buffer capacitance overhead proportional to wire
capacitance (the skew-management buffers; the dominant term in published
clock networks), and (c) every sink's clock pin at activity 1. The
forwarded clock pays the clock wire along NoC links only, one small
repeater per pipeline hop, and sink pins at the *gated* activity measured
by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.technology import Technology, TECH_90NM
from repro.units import power_mw


@dataclass(frozen=True)
class ClockPowerBreakdown:
    """Per-contributor clock power in mW."""

    wire_mw: float
    buffer_mw: float
    sink_mw: float

    @property
    def total_mw(self) -> float:
        return self.wire_mw + self.buffer_mw + self.sink_mw

    def describe(self) -> str:
        return (
            f"wire {self.wire_mw:.3f} mW + buffers {self.buffer_mw:.3f} mW "
            f"+ sinks {self.sink_mw:.3f} mW = {self.total_mw:.3f} mW"
        )


#: Clock-pin capacitance of one 32-bit register bank (32 flops x ~1.5 fF
#: clock pin, plus the gating/control flops).
REGISTER_BANK_CLOCK_CAP_PF = 0.055

#: Skew-matching buffer capacitance as a multiple of the wire capacitance it
#: drives, for an actively balanced global tree (literature-typical 1.5-3x;
#: we use the middle of that band).
BALANCED_BUFFER_FACTOR = 2.0

#: Repeater capacitance factor for the unbalanced forwarded clock: one
#: minimum inverter per segment, a small fraction of the wire it drives.
FORWARDED_BUFFER_FACTOR = 0.25


def balanced_tree_clock_power_mw(total_wire_mm: float, sinks: int,
                                 frequency: float,
                                 tech: Technology = TECH_90NM,
                                 buffer_factor: float = BALANCED_BUFFER_FACTOR,
                                 ) -> ClockPowerBreakdown:
    """Power of a skew-balanced global clock tree (always toggling).

    Args:
        total_wire_mm: total routed clock wire length.
        sinks: number of clocked register banks served.
        frequency: clock frequency in GHz.
        buffer_factor: buffer-to-wire capacitance overhead ratio.
    """
    _check(total_wire_mm, sinks, frequency)
    wire_cap = tech.wire.capacitance(total_wire_mm)
    buffer_cap = buffer_factor * wire_cap
    sink_cap = sinks * REGISTER_BANK_CLOCK_CAP_PF
    return ClockPowerBreakdown(
        wire_mw=power_mw(wire_cap, tech.supply_v, frequency),
        buffer_mw=power_mw(buffer_cap, tech.supply_v, frequency),
        sink_mw=power_mw(sink_cap, tech.supply_v, frequency),
    )


def forwarded_clock_power_mw(total_wire_mm: float, sinks: int,
                             frequency: float,
                             sink_activity: float = 1.0,
                             tech: Technology = TECH_90NM,
                             buffer_factor: float = FORWARDED_BUFFER_FACTOR,
                             ) -> ClockPowerBreakdown:
    """Power of the IC-NoC forwarded clock.

    The trunk wire and repeaters toggle continuously (the clock is alive
    along the tree), but each register bank's clock pin only toggles on
    enabled edges: ``sink_activity`` is the measured gating activity from
    :class:`repro.clocking.gating.GatingStats`.
    """
    _check(total_wire_mm, sinks, frequency)
    if not 0.0 <= sink_activity <= 1.0:
        raise ConfigurationError("sink_activity must be in [0, 1]")
    wire_cap = tech.wire.capacitance(total_wire_mm)
    buffer_cap = buffer_factor * wire_cap
    sink_cap = sinks * REGISTER_BANK_CLOCK_CAP_PF
    return ClockPowerBreakdown(
        wire_mw=power_mw(wire_cap, tech.supply_v, frequency),
        buffer_mw=power_mw(buffer_cap, tech.supply_v, frequency),
        sink_mw=power_mw(sink_cap, tech.supply_v, frequency,
                         activity=sink_activity),
    )


def _check(total_wire_mm: float, sinks: int, frequency: float) -> None:
    if total_wire_mm < 0.0:
        raise ConfigurationError("wire length must be >= 0")
    if sinks < 0:
        raise ConfigurationError("sink count must be >= 0")
    if frequency <= 0.0:
        raise ConfigurationError("frequency must be positive")
