"""Conventional mesochronous crossing schemes — the Section 2 baselines.

In the general mesochronous case nothing is known about the phase between
two domains, so crossings either risk metastability or pay for avoiding it:

* :class:`TwoFlopSynchronizer` — the brute-force double flip-flop. Adds a
  fixed latency and still has a finite mean time between failures (MTBF),
  modelled with the standard exponential resolution formula.
* :class:`PhaseDetectorScheme` — the delay-adjusting schemes of the paper's
  refs [15] (data-path delay), [20] (clock delay) and [13] (edge
  selection). Deterministic after an initialization phase, but pay circuit
  overhead for phase detection.
* :class:`ICNoCCrossing` — the paper's contribution: because the phase
  relation between adjacent nodes is *known by construction* (the clock is
  forwarded along the data path), transfers are plain alternating-edge
  register-to-register moves: zero added latency, no metastability, no
  initialization, negligible overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TwoFlopSynchronizer:
    """Double-flop synchronizer model.

    Attributes:
        stages: number of synchronizing flip-flops (>= 1).
        tau_ps: metastability resolution time constant of the flop.
        t_window_ps: metastability capture window (T0 in the MTBF formula).
    """

    stages: int = 2
    tau_ps: float = 20.0
    t_window_ps: float = 10.0

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ConfigurationError("synchronizer needs >= 1 stage")
        if self.tau_ps <= 0.0 or self.t_window_ps <= 0.0:
            raise ConfigurationError("tau and window must be positive")

    @property
    def latency_cycles(self) -> float:
        """Added forward latency in clock cycles (one per extra flop)."""
        return float(self.stages)

    def mtbf_seconds(self, clock_ghz: float, data_rate_ghz: float,
                     resolution_time_ps: float | None = None) -> float:
        """Mean time between synchronization failures, in seconds.

        ``MTBF = exp(t_res / tau) / (T0 * f_clk * f_data)`` with the
        resolution time defaulting to the slack available: (stages - 1)
        clock periods.
        """
        if clock_ghz <= 0.0 or data_rate_ghz <= 0.0:
            raise ConfigurationError("rates must be positive")
        if resolution_time_ps is None:
            resolution_time_ps = (self.stages - 1) * 1000.0 / clock_ghz
        exponent = resolution_time_ps / self.tau_ps
        # Rates in GHz = 1e9/s; window in ps = 1e-12 s.
        event_rate_per_s = (self.t_window_ps * 1e-12) * \
            (clock_ghz * 1e9) * (data_rate_ghz * 1e9)
        if event_rate_per_s == 0.0:
            return math.inf
        try:
            return math.exp(exponent) / event_rate_per_s
        except OverflowError:
            return math.inf

    def failure_probability_per_transfer(self, clock_ghz: float) -> float:
        """Probability one transfer resolves metastably past its slack."""
        resolution_time_ps = (self.stages - 1) * 1000.0 / clock_ghz
        p_enter = self.t_window_ps * clock_ghz / 1000.0  # window / period
        return min(1.0, p_enter * math.exp(-resolution_time_ps / self.tau_ps))


@dataclass(frozen=True)
class PhaseDetectorScheme:
    """Delay-adjusting mesochronous schemes (paper refs [15], [20], [13]).

    Attributes:
        init_cycles: length of the initialization/training phase.
        area_overhead_mm2: phase-detection circuitry per crossing.
        latency_cycles: steady-state added latency.
        reinit_on_drift: whether voltage/temperature drift forces re-training.
    """

    init_cycles: int = 64
    area_overhead_mm2: float = 0.002
    latency_cycles: float = 0.5
    reinit_on_drift: bool = True

    def __post_init__(self) -> None:
        if self.init_cycles < 0:
            raise ConfigurationError("init_cycles must be >= 0")
        if self.area_overhead_mm2 < 0.0:
            raise ConfigurationError("area overhead must be >= 0")

    def total_latency_cycles(self, transfers: int) -> float:
        """Amortised latency including the training phase."""
        if transfers <= 0:
            raise ConfigurationError("transfers must be positive")
        return self.latency_cycles + self.init_cycles / transfers


@dataclass(frozen=True)
class ICNoCCrossing:
    """The paper's integrated-clocking crossing.

    Phase relations are known by construction, so the crossing is an
    ordinary alternating-edge transfer: deterministic, zero extra latency
    beyond the pipeline stage itself, no initialization, and the only
    overhead is the (already counted) pipeline-stage control.
    """

    latency_cycles: float = 0.0
    init_cycles: int = 0
    area_overhead_mm2: float = 0.0

    def mtbf_seconds(self, clock_ghz: float, data_rate_ghz: float) -> float:
        """Infinite: transfers never sample inside a switching window as long
        as the link-level timing constraints (eqs. 1-7) hold."""
        if clock_ghz <= 0.0 or data_rate_ghz <= 0.0:
            raise ConfigurationError("rates must be positive")
        return math.inf
