"""The mesh's 5-port XY router — a thin layer over the shared fabric.

Historically this module carried its own router implementation; since the
``repro.fabric`` refactor the credit/wormhole machinery (input FIFOs,
credits, per-output round-robin arbitration, wormhole locks, the idle
sleep contract, gating backfill, and the ``arbitration_grant`` /
``credit_exhausted`` kernel events) lives once in
:class:`repro.fabric.router.FabricRouter`; the mesh contributes only its
XY dimension-order routing strategy and its port naming. Behaviour is
unchanged — same cycle-level semantics, same statistics, same names.

``MeshLink`` is the historical name of the generic
:class:`repro.fabric.link.CreditLink`; both resolve to the same class.
"""

from __future__ import annotations

from repro.fabric.link import CreditLink
from repro.fabric.router import FabricRouter
from repro.fabric.routing import (
    LOCAL,
    NORTH,
    EAST,
    SOUTH,
    WEST,
    PORT_NAMES,
    XYRouting,
)
from repro.sim.kernel import SimKernel

__all__ = ["MeshLink", "MeshRouter", "LOCAL", "NORTH", "EAST", "SOUTH",
           "WEST", "PORT_NAMES"]

#: Deprecated alias (PR 3): one directed router-to-router connection.
MeshLink = CreditLink


class MeshRouter(FabricRouter):
    """5-port XY wormhole router (ports absent at mesh edges stay None).

    ``route`` lets an assembling network reuse its single
    :class:`~repro.fabric.routing.XYRouting` instance; standalone
    construction (tests, experiments) derives the route here.
    """

    def __init__(self, kernel: SimKernel, name: str, x: int, y: int,
                 cols: int, rows: int, buffer_depth: int = 4,
                 route=None, pipeline_depth: int = 1,
                 register: bool = True, allocator=None):
        self.x = x
        self.y = y
        self.cols = cols
        self.rows = rows
        if route is None:
            route = XYRouting(cols, rows).for_node(y * cols + x)
        super().__init__(kernel, name, n_ports=5, route=route,
                         buffer_depth=buffer_depth,
                         port_names=PORT_NAMES,
                         pipeline_depth=pipeline_depth,
                         register=register, allocator=allocator)
