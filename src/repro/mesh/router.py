"""A globally synchronous mesh router with input FIFOs and credits.

Single-edge clocking (all routers share parity 0 in the kernel: one firing
per clock cycle). Each input port has a FIFO of ``buffer_depth`` flits —
the stall buffers the IC-NoC architecture avoids. Flow control is
credit-based: a router may only forward a flit toward a neighbour when it
holds a credit for that neighbour's input FIFO; the neighbour returns a
credit when it dequeues. XY wormhole routing with per-output round-robin
arbitration and locks.

Routers honour the idle-component contract (docs/kernel.md): signals are
driven write-on-change (a credit wire is zeroed once after a return, then
left alone), so an edge that receives nothing, forwards nothing, and has
nothing buffered is a fixed point — the router sleeps watching its input
flit wires and output credit wires, and mesh-heavy sweeps benefit from
the kernel's activity-driven fast path. Skipped edges are backfilled into
the gating statistics via :class:`GatedComponentMixin`.
"""

from __future__ import annotations

from collections import deque

from repro.clocking.gating import GatedComponentMixin, GatingStats
from repro.errors import ConfigurationError, RoutingError
from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel
from repro.sim.signal import Signal

#: Port indices.
LOCAL, NORTH, EAST, SOUTH, WEST = range(5)
PORT_NAMES = ("local", "north", "east", "south", "west")


class MeshLink:
    """One directed router-to-router (or router-to-NI) connection."""

    def __init__(self, kernel: SimKernel, name: str):
        self.flit: Signal = kernel.signal(f"{name}.flit", initial=None)
        self.credit: Signal = kernel.signal(f"{name}.credit", initial=0)


class MeshRouter(GatedComponentMixin, ClockedComponent):
    """5-port XY wormhole router (ports absent at mesh edges stay None)."""

    def __init__(self, kernel: SimKernel, name: str, x: int, y: int,
                 cols: int, rows: int, buffer_depth: int = 4):
        super().__init__(name, parity=0)
        if buffer_depth < 2:
            raise ConfigurationError("credit flow control needs depth >= 2")
        self.x = x
        self.y = y
        self.cols = cols
        self.rows = rows
        self.buffer_depth = buffer_depth
        # in_links[p]: flits arriving on port p; out_links[p]: flits leaving.
        self.in_links: list[MeshLink | None] = [None] * 5
        self.out_links: list[MeshLink | None] = [None] * 5
        self.fifos: list[deque[Flit]] = [deque() for _ in range(5)]
        self.credits = [0] * 5  # credits toward each output's consumer
        self.locks: list[int | None] = [None] * 5
        self.arbiters = [RoundRobinArbiter(5) for _ in range(5)]
        self._gating = GatingStats()
        self.flits_forwarded = 0
        # Signals to watch while asleep: anything arriving (flits in,
        # credits back) makes the next edge act again.
        self._watch: list[Signal] = []
        kernel.add_component(self)

    def connect(self, port: int, in_link: MeshLink | None,
                out_link: MeshLink | None) -> None:
        self.in_links[port] = in_link
        self.out_links[port] = out_link
        if out_link is not None:
            self.credits[port] = self.buffer_depth
        self._watch = [link.flit for link in self.in_links
                       if link is not None]
        self._watch += [link.credit for link in self.out_links
                        if link is not None]

    def _route(self, flit: Flit) -> int:
        dx = flit.dest % self.cols
        dy = flit.dest // self.cols
        if dx > self.x:
            return EAST
        if dx < self.x:
            return WEST
        if dy > self.y:
            return SOUTH
        if dy < self.y:
            return NORTH
        return LOCAL

    def on_edge(self, tick: int) -> None:
        enabled = False   # register-bank activity (gating statistics)
        active = False    # anything at all happened (sleep decision)
        # 1. Collect credit returns. Link payloads are (value, sent_tick)
        # tuples; anything sent at tick t-2 is consumed exactly once, at
        # this edge — stale signal values are ignored by the tick tag.
        for port, link in enumerate(self.out_links):
            if link is None:
                continue
            payload = link.credit.value
            if payload is not None and payload != 0:
                count, sent_tick = payload
                if sent_tick == tick - 2:
                    self.credits[port] += count
                    active = True
        # 2. Forward: per output, arbitrate among input FIFO heads. Runs
        # before arrivals are enqueued, so a flit spends at least one full
        # cycle in the router (head latency 2 cycles/hop incl. the wire).
        credits_returned = [0] * 5
        for out_port in range(5):
            out_link = self.out_links[out_port]
            if out_link is None or self.credits[out_port] <= 0:
                continue
            lock = self.locks[out_port]
            requests = []
            for in_port in range(5):
                fifo = self.fifos[in_port]
                if not fifo:
                    requests.append(False)
                    continue
                head = fifo[0]
                if self._route(head) != out_port:
                    requests.append(False)
                    continue
                if lock is not None:
                    requests.append(in_port == lock)
                else:
                    requests.append(head.is_head)
            if not any(requests):
                continue
            winner = self.arbiters[out_port].grant(requests)
            flit = self.fifos[winner].popleft()
            credits_returned[winner] += 1
            out_link.flit.set((flit, tick), tick)
            self.credits[out_port] -= 1
            self.flits_forwarded += 1
            enabled = True
            if flit.is_tail:
                self.locks[out_port] = None
            elif flit.is_head:
                self.locks[out_port] = winner
        # 3. Accept arrivals (credit scheme guarantees FIFO space).
        for port, link in enumerate(self.in_links):
            if link is None:
                continue
            payload = link.flit.value
            if payload is None:
                continue
            flit, sent_tick = payload
            if sent_tick != tick - 2:
                continue  # already consumed on a previous edge
            if len(self.fifos[port]) >= self.buffer_depth:
                raise RoutingError(f"{self.name}: FIFO overflow on "
                                   f"{PORT_NAMES[port]} (credit violation)")
            self.fifos[port].append(flit)
            enabled = True
        # 4. Return credits upstream for dequeued flits — write-on-change:
        # a credit wire carrying a stale (count, tick) payload is zeroed
        # once, then left alone, so an idle router drives nothing.
        for in_port, link in enumerate(self.in_links):
            if link is None:
                continue
            if credits_returned[in_port]:
                link.credit.set((credits_returned[in_port], tick), tick)
                active = True
            elif link.credit.value != 0:
                link.credit.set(0, tick)
                active = True
        self.gating.record(enabled)
        if not enabled and not active:
            # Fixed point: nothing arrived, nothing moved, every wire we
            # drive already holds its committed value. Forwarding (even
            # with buffered flits) can only resume after a credit return
            # or a new arrival — both are watched signal changes.
            self.sleep_until(*self._watch)

    @property
    def buffered_flits(self) -> int:
        return sum(len(fifo) for fifo in self.fifos)
