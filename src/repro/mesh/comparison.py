"""Tree-vs-mesh structural comparison tables (paper Section 3 claims).

Claims reproduced here:

* worst-case hops: tree ``2*log2(N) - 1`` vs mesh ``~2*sqrt(N)``;
* the tree has fewer routers ((N-1) shared vs N dedicated), hence lower
  area and leakage;
* neighbouring cores in a binary tree communicate through a single 3x3
  router;
* per-flit energy favours the tree (after Lee [12]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mesh.topology import MeshTopology
from repro.noc.floorplan import floorplan_for, segment_count
from repro.noc.topology import TreeTopology
from repro.physical.area import mesh_noc_area, tree_noc_area
from repro.physical.power import (
    average_flit_energy_mesh_local_pj,
    average_flit_energy_mesh_pj,
    average_flit_energy_tree_local_pj,
    average_flit_energy_tree_pj,
    energy_crossover_locality,
)
from repro.tech.technology import Technology, TECH_90NM

#: Locality used for the clustered-traffic energy comparison (the paper's
#: application-mapping assumption).
DEFAULT_LOCALITY = 0.8


@dataclass(frozen=True)
class TopologyComparison:
    """One N in the tree-vs-mesh sweep."""

    ports: int
    tree_worst_hops: int
    tree_paper_formula: int      # 2*log2(N) - 1
    mesh_worst_hops: int
    mesh_paper_formula: float    # 2*sqrt(N)
    tree_avg_hops: float
    mesh_avg_hops: float
    tree_routers: int
    mesh_routers: int
    tree_area_mm2: float
    mesh_area_mm2: float
    tree_energy_pj: float
    mesh_energy_pj: float
    tree_energy_local_pj: float
    mesh_energy_local_pj: float

    @property
    def tree_wins_hops(self) -> bool:
        return self.tree_worst_hops < self.mesh_worst_hops

    @property
    def tree_wins_area(self) -> bool:
        return self.tree_area_mm2 < self.mesh_area_mm2

    @property
    def tree_wins_energy_local(self) -> bool:
        """Energy under clustered traffic — the paper's mapping regime."""
        return self.tree_energy_local_pj < self.mesh_energy_local_pj


def _tree_pipeline_stage_estimate(topology: TreeTopology,
                                  chip_mm: float,
                                  max_segment_mm: float = 1.25) -> int:
    """Stage count without building the simulator: NI stages + repeaters."""
    plan = floorplan_for(topology, chip_mm, chip_mm)
    stages = topology.leaves
    for (___, _port), length in plan.link_lengths.items():
        stages += 2 * (segment_count(length, max_segment_mm) - 1)  # both dirs
    return stages


def compare_topologies(ports: int, chip_mm: float = 10.0,
                       buffer_depth: int = 4,
                       tech: Technology = TECH_90NM,
                       include_energy: bool = True) -> TopologyComparison:
    """Build the full comparison row for one port count."""
    tree = TreeTopology(ports, arity=2)
    mesh = MeshTopology.square_for(ports)
    tree_plan = floorplan_for(tree, chip_mm, chip_mm)
    tree_stages = _tree_pipeline_stage_estimate(tree, chip_mm)
    tree_area = tree_noc_area(tree, tree_stages, chip_mm * chip_mm, tech)
    mesh_area = mesh_noc_area(mesh, buffer_depth, chip_mm * chip_mm, tech)
    if include_energy:
        tree_energy = average_flit_energy_tree_pj(tree, tree_plan, tech)
        mesh_energy = average_flit_energy_mesh_pj(mesh, chip_mm, chip_mm,
                                                  tech)
        tree_local = average_flit_energy_tree_local_pj(
            tree, tree_plan, DEFAULT_LOCALITY, tech
        )
        mesh_local = average_flit_energy_mesh_local_pj(
            mesh, DEFAULT_LOCALITY, chip_mm, chip_mm, tech
        )
    else:
        tree_energy = float("nan")
        mesh_energy = float("nan")
        tree_local = float("nan")
        mesh_local = float("nan")
    return TopologyComparison(
        ports=ports,
        tree_worst_hops=tree.worst_case_hops(),
        tree_paper_formula=2 * int(math.log2(ports)) - 1,
        mesh_worst_hops=mesh.worst_case_hops(),
        mesh_paper_formula=2.0 * math.sqrt(ports),
        tree_avg_hops=tree.average_hops_uniform(),
        mesh_avg_hops=mesh.average_hops_uniform(),
        tree_routers=tree.router_count,
        mesh_routers=mesh.router_count,
        tree_area_mm2=tree_area.total_mm2,
        mesh_area_mm2=mesh_area.total_mm2,
        tree_energy_pj=tree_energy,
        mesh_energy_pj=mesh_energy,
        tree_energy_local_pj=tree_local,
        mesh_energy_local_pj=mesh_local,
    )


def tree_mesh_hop_table(port_counts: list[int] | None = None
                        ) -> list[TopologyComparison]:
    """Hop/router comparison across network sizes (no energy: fast)."""
    if port_counts is None:
        port_counts = [16, 64, 256, 1024]
    return [compare_topologies(n, include_energy=(n <= 256))
            for n in port_counts]


def tree_mesh_area_table(ports: int = 64,
                         chip_mm: float = 10.0) -> dict[str, float]:
    """Area split for the paper's demonstrator size."""
    row = compare_topologies(ports, chip_mm)
    return {
        "tree_mm2": row.tree_area_mm2,
        "mesh_mm2": row.mesh_area_mm2,
        "tree_routers": row.tree_routers,
        "mesh_routers": row.mesh_routers,
        "ratio": row.mesh_area_mm2 / row.tree_area_mm2,
    }


def tree_mesh_energy_table(ports: int = 64,
                           chip_mm: float = 10.0) -> dict[str, float]:
    """Per-flit energy under uniform and clustered traffic + crossover."""
    row = compare_topologies(ports, chip_mm)
    tree = TreeTopology(ports, arity=2)
    plan = floorplan_for(tree, chip_mm, chip_mm)
    mesh = MeshTopology.square_for(ports)
    crossover = energy_crossover_locality(tree, plan, mesh, chip_mm, chip_mm)
    return {
        "tree_uniform_pj": row.tree_energy_pj,
        "mesh_uniform_pj": row.mesh_energy_pj,
        "tree_local_pj": row.tree_energy_local_pj,
        "mesh_local_pj": row.mesh_energy_local_pj,
        "local_ratio": row.mesh_energy_local_pj / row.tree_energy_local_pj,
        "crossover_locality": -1.0 if crossover is None else crossover,
    }
