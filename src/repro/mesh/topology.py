"""2-D mesh structure and XY routing analysis."""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import TopologyError


class MeshTopology:
    """A cols x rows mesh of routers, one network port per router.

    Nodes are numbered row-major: node = y * cols + x.

    Satisfies the credit-fabric topology protocol
    (:mod:`repro.fabric.topologies`): ``max_ports`` routers with
    ``links()`` enumerating the neighbour pairs in build order.
    """

    #: Uniform router port count (local + 4 directions; edge routers
    #: simply leave the missing directions unconnected).
    max_ports = 5

    def __init__(self, cols: int, rows: int | None = None):
        if rows is None:
            rows = cols
        if cols < 2 or rows < 2:
            raise TopologyError("mesh needs at least 2x2 routers")
        self.cols = cols
        self.rows = rows

    @staticmethod
    def square_for(ports: int) -> "MeshTopology":
        """The square mesh serving ``ports`` nodes (ports must be square)."""
        side = math.isqrt(ports)
        if side * side != ports:
            raise TopologyError(f"{ports} ports is not a square number")
        return MeshTopology(side, side)

    @property
    def nodes(self) -> int:
        return self.cols * self.rows

    @property
    def router_count(self) -> int:
        """One router per node — N routers vs the tree's N-1 shared ones."""
        return self.nodes

    def coordinates(self, node: int) -> tuple[int, int]:
        if not 0 <= node < self.nodes:
            raise TopologyError(f"unknown node {node}")
        return (node % self.cols, node // self.cols)

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise TopologyError(f"({x}, {y}) outside mesh")
        return y * self.cols + x

    def router_ports(self, node: int) -> int:
        """Physical ports incl. local: 5 in the middle, less at edges."""
        x, y = self.coordinates(node)
        ports = 1  # local
        ports += x > 0
        ports += x < self.cols - 1
        ports += y > 0
        ports += y < self.rows - 1
        return ports

    def links(self) -> Iterator[tuple[int, int, int, int]]:
        """Bidirectional neighbour pairs ``(a, a_port, b, b_port)``, in
        the fixed per-node east-then-south build order the network
        assembler has always used."""
        from repro.fabric.routing import EAST, NORTH, SOUTH, WEST
        for node in range(self.nodes):
            x, y = node % self.cols, node // self.cols
            if x < self.cols - 1:
                yield (node, EAST, self.node_at(x + 1, y), WEST)
            if y < self.rows - 1:
                yield (node, SOUTH, self.node_at(x, y + 1), NORTH)

    def xy_path(self, src: int, dest: int) -> list[int]:
        """Routers visited under XY routing (including both endpoints)."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dest)
        path = [self.node_at(sx, sy)]
        x, y = sx, sy
        while x != dx:
            x += 1 if dx > x else -1
            path.append(self.node_at(x, y))
        while y != dy:
            y += 1 if dy > y else -1
            path.append(self.node_at(x, y))
        return path

    def hop_count(self, src: int, dest: int) -> int:
        """Routers traversed = Manhattan distance + 1 (both endpoints)."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dest)
        return abs(dx - sx) + abs(dy - sy) + 1

    def worst_case_hops(self) -> int:
        """Corner to corner: cols + rows - 1 (~ the paper's 2*sqrt(N))."""
        return self.cols + self.rows - 1

    def average_hops_uniform(self) -> float:
        total = 0
        for src in range(self.nodes):
            for dest in range(self.nodes):
                if src != dest:
                    total += self.hop_count(src, dest)
        return total / (self.nodes * (self.nodes - 1))

    def link_count(self) -> int:
        """Bidirectional router-to-router links."""
        return (self.cols - 1) * self.rows + (self.rows - 1) * self.cols

    def total_link_length_mm(self, chip_width_mm: float = 10.0,
                             chip_height_mm: float = 10.0) -> float:
        """One-way wire length of all links at the natural tile pitch."""
        pitch_x = chip_width_mm / self.cols
        pitch_y = chip_height_mm / self.rows
        horizontal = (self.cols - 1) * self.rows * pitch_x
        vertical = (self.rows - 1) * self.cols * pitch_y
        return horizontal + vertical

    def link_pitch_mm(self, chip_width_mm: float = 10.0,
                      chip_height_mm: float = 10.0) -> float:
        return max(chip_width_mm / self.cols, chip_height_mm / self.rows)
