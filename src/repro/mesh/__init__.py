"""Baseline mesh NoC: the architecture the paper's tree is compared against.

A conventional globally synchronous 2-D mesh with XY (dimension-order)
wormhole routing, input FIFOs and credit-based flow control — the stall
buffers and single-edge clocking the IC-NoC gets rid of. Used by the
tree-vs-mesh experiments (hops, area, energy, latency-vs-load).
"""

from repro.mesh.topology import MeshTopology
from repro.mesh.network import MeshNetwork, MeshConfig
from repro.mesh.comparison import (
    tree_mesh_hop_table,
    tree_mesh_area_table,
    tree_mesh_energy_table,
)

__all__ = [
    "MeshTopology",
    "MeshNetwork",
    "MeshConfig",
    "tree_mesh_hop_table",
    "tree_mesh_area_table",
    "tree_mesh_energy_table",
]
