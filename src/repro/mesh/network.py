"""Mesh network assembly with the same run-time API as the IC-NoC.

The mesh is globally synchronous: every router fires once per clock cycle
(kernel parity 0). Sources and sinks at the local ports use the same
credit scheme as the routers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.clocking.gating import GatingStats
from repro.errors import ConfigurationError, TopologyError
from repro.mesh.router import (
    MeshLink,
    MeshRouter,
    LOCAL,
    NORTH,
    EAST,
    SOUTH,
    WEST,
)
from repro.mesh.topology import MeshTopology
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.stats import NetworkStats
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel
from repro.tech.technology import Technology, TECH_90NM


@dataclass(frozen=True)
class MeshConfig:
    """Parameters of the baseline mesh.

    ``activity_driven`` selects the kernel's idle-skipping fast path (the
    default); False forces the naive fire-everything reference loop,
    useful for equivalence checks and benchmarking — mirroring
    :class:`repro.noc.network.NetworkConfig`.
    """

    cols: int = 8
    rows: int = 8
    chip_width_mm: float = 10.0
    chip_height_mm: float = 10.0
    buffer_depth: int = 4
    tech: Technology = TECH_90NM
    activity_driven: bool = True

    def __post_init__(self) -> None:
        if self.buffer_depth < 2:
            raise ConfigurationError("buffer_depth must be >= 2")

    @property
    def nodes(self) -> int:
        return self.cols * self.rows


class _MeshSource(ClockedComponent):
    """Injects flits into a router's local input port under credits."""

    def __init__(self, kernel: SimKernel, name: str, link: MeshLink,
                 credits: int):
        super().__init__(name, parity=0)
        self.link = link
        self.credits = credits
        self.flits: deque[Flit] = deque()
        self.packets: deque[Packet] = deque()
        kernel.add_component(self)

    def submit(self, packet: Packet) -> None:
        self.packets.append(packet)
        self.wake()

    @property
    def idle(self) -> bool:
        return not self.flits and not self.packets

    def on_edge(self, tick: int) -> None:
        payload = self.link.credit.value
        active = False
        if payload is not None and payload != 0:
            count, sent_tick = payload
            if sent_tick == tick - 2:
                self.credits += count
                active = True
        if not self.flits and self.packets:
            packet = self.packets.popleft()
            packet.inject_tick = tick
            self.flits.extend(packet.to_flits())
        if self.flits and self.credits > 0:
            self.link.flit.set((self.flits.popleft(), tick), tick)
            self.credits -= 1
        elif not active:
            # Nothing sendable (empty, or out of credits) and no credit
            # arrived: wait for a credit return or the next submit().
            self.sleep_until(self.link.credit)


class _MeshSink(ClockedComponent):
    """Drains a router's local output port, returning credits."""

    def __init__(self, kernel: SimKernel, name: str, link: MeshLink,
                 on_packet: Callable[[Packet, int], None]):
        super().__init__(name, parity=0)
        self.link = link
        self.on_packet = on_packet
        self._assembly: dict[int, list[Flit]] = {}
        self.flits_received = 0
        kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        payload = self.link.flit.value
        credit = 0
        if payload is not None:
            flit, sent_tick = payload
            if sent_tick == tick - 2:
                self.flits_received += 1
                credit = 1
                self._kernel.emit("flit", flit)
                buffer = self._assembly.setdefault(flit.packet_id, [])
                buffer.append(flit)
                if flit.is_tail:
                    del self._assembly[flit.packet_id]
                    packet = Packet.from_flits(buffer)
                    packet.eject_tick = tick
                    self.on_packet(packet, tick)
                    self._kernel.emit("packet", packet)
        # Write-on-change credit return (cf. MeshRouter): zero the wire
        # once after a return, then stop driving it.
        if credit:
            self.link.credit.set((credit, tick), tick)
        elif self.link.credit.value != 0:
            self.link.credit.set(0, tick)
        else:
            # No arrival and no wire to settle: wait for the next flit.
            self.sleep_until(self.link.flit)


class MeshNetwork:
    """A built, runnable mesh with ICNoCNetwork-compatible API."""

    def __init__(self, config: MeshConfig):
        self.config = config
        self.topology = MeshTopology(config.cols, config.rows)
        self.kernel = SimKernel(activity_driven=config.activity_driven)
        self.stats = NetworkStats()
        self.routers: list[MeshRouter] = []
        self.sources: list[_MeshSource] = []
        self.sinks: list[_MeshSink] = []
        self.delivered: list[Packet] = []
        self._inflight: dict[int, Packet] = {}
        self._build()

    def _build(self) -> None:
        cols, rows = self.config.cols, self.config.rows
        for node in range(self.topology.nodes):
            x, y = self.topology.coordinates(node)
            self.routers.append(MeshRouter(
                self.kernel, f"m{node}", x, y, cols, rows,
                buffer_depth=self.config.buffer_depth,
            ))
        # Router-to-router links (two directed links per mesh edge).
        for node in range(self.topology.nodes):
            x, y = self.topology.coordinates(node)
            if x < cols - 1:
                east = self.topology.node_at(x + 1, y)
                self._connect(node, EAST, east, WEST)
            if y < rows - 1:
                south = self.topology.node_at(x, y + 1)
                self._connect(node, SOUTH, south, NORTH)
        # Local ports.
        for node in range(self.topology.nodes):
            router = self.routers[node]
            inject = MeshLink(self.kernel, f"m{node}.inj")
            eject = MeshLink(self.kernel, f"m{node}.ej")
            router.connect(LOCAL, inject, eject)
            source = _MeshSource(self.kernel, f"m{node}.src", inject,
                                 credits=self.config.buffer_depth)
            sink = _MeshSink(self.kernel, f"m{node}.sink", eject,
                             on_packet=self._make_delivery_hook(node))
            # The sink grants the router initial credits via connect();
            # sink-side credits mirror the router's local output credits.
            self.sources.append(source)
            self.sinks.append(sink)

    def _connect(self, a: int, a_port: int, b: int, b_port: int) -> None:
        a_to_b = MeshLink(self.kernel, f"m{a}>m{b}")
        b_to_a = MeshLink(self.kernel, f"m{b}>m{a}")
        router_a, router_b = self.routers[a], self.routers[b]
        router_a.connect(a_port, b_to_a, a_to_b)
        router_b.connect(b_port, a_to_b, b_to_a)

    def _make_delivery_hook(self, node: int):
        def hook(packet: Packet, tick: int) -> None:
            original = self._inflight.pop(packet.packet_id, None)
            if original is not None:
                packet.inject_tick = original.inject_tick
            self.delivered.append(packet)
            hops = self.topology.hop_count(packet.src, packet.dest)
            self.stats.record_delivery(packet, hops)
        return hook

    # -- ICNoCNetwork-compatible API --------------------------------------

    def send(self, packet: Packet) -> None:
        if not 0 <= packet.dest < self.topology.nodes:
            raise TopologyError(f"unknown destination {packet.dest}")
        if packet.src == packet.dest:
            raise TopologyError("src == dest: packets never enter the mesh")
        self._inflight[packet.packet_id] = packet
        self.sources[packet.src].submit(packet)
        self.stats.packets_injected += 1
        self.kernel.emit("inject", packet)

    def run_ticks(self, ticks: int) -> None:
        self.kernel.run_ticks(ticks)
        self.stats.elapsed_ticks = self.kernel.tick

    def run_cycles(self, cycles: float) -> None:
        self.kernel.run_cycles(cycles)
        self.stats.elapsed_ticks = self.kernel.tick

    def drain(self, max_ticks: int = 1_000_000) -> bool:
        done = self.kernel.run_until(
            lambda: self.stats.packets_delivered >= self.stats.packets_injected,
            max_ticks,
        )
        self.stats.elapsed_ticks = self.kernel.tick
        return done

    def gating_stats(self) -> GatingStats:
        total = GatingStats()
        for router in self.routers:
            total.merge(router.gating)
        return total

    def total_buffer_flits(self) -> int:
        """Total FIFO capacity — the stall-buffer cost the IC-NoC avoids."""
        total = 0
        for node in range(self.topology.nodes):
            router = self.routers[node]
            ports_in_use = sum(
                1 for link in router.in_links if link is not None
            )
            total += ports_in_use * self.config.buffer_depth
        return total
