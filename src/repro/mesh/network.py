"""Mesh network assembly — a thin layer over the shared fabric.

The mesh is globally synchronous: every router fires once per clock cycle
(kernel parity 0). The assembly, the endpoint adapters, and the whole
run-time API live in :class:`repro.fabric.network.CreditFabricNetwork`;
this module contributes the mesh's structure/routing pairing and keeps
the historical names (``MeshNetwork``, ``MeshConfig``, ``_MeshSource``,
``_MeshSink``) importable. Behaviour, component names, and registration
order are unchanged, so results are bit-identical to the pre-fabric
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fabric.endpoint import FabricSink, FabricSource
from repro.fabric.network import CreditFabricNetwork
from repro.fabric.router import FabricRouter
from repro.fabric.routing import PORT_NAMES
from repro.mesh.router import MeshRouter
from repro.mesh.topology import MeshTopology
from repro.sim.kernel import SimKernel
from repro.tech.technology import Technology, TECH_90NM

#: Deprecated aliases (PR 3): the endpoint adapters are fabric-generic.
_MeshSource = FabricSource
_MeshSink = FabricSink


@dataclass(frozen=True)
class MeshConfig:
    """Parameters of the baseline mesh.

    ``activity_driven`` selects the kernel's idle-skipping fast path (the
    default); False forces the naive fire-everything reference loop,
    useful for equivalence checks and benchmarking — mirroring
    :class:`repro.noc.network.NetworkConfig`.
    """

    cols: int = 8
    rows: int = 8
    chip_width_mm: float = 10.0
    chip_height_mm: float = 10.0
    buffer_depth: int = 4
    max_segment_mm: float = 1.25
    pipeline_depth: int = 1
    segment_links: bool = False
    credit_sizing: str = "auto"
    tech: Technology = TECH_90NM
    activity_driven: bool = True
    backend: str = "dispatch"

    def __post_init__(self) -> None:
        if self.buffer_depth < 2:
            raise ConfigurationError("buffer_depth must be >= 2")
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        if self.backend not in ("dispatch", "array", "auto"):
            raise ConfigurationError(
                f"backend must be 'dispatch', 'array' or 'auto', "
                f"got {self.backend!r}"
            )
        if self.backend == "array":
            if self.pipeline_depth != 1:
                raise ConfigurationError(
                    f"backend='array' does not support pipeline_depth > 1 "
                    f"(got {self.pipeline_depth}); use backend='dispatch' "
                    f"(or 'auto' to fall back)"
                )
            if self.segment_links:
                raise ConfigurationError(
                    "backend='array' does not support segmented links; "
                    "use backend='dispatch' (or 'auto' to fall back)"
                )
        if self.max_segment_mm <= 0.0:
            raise ConfigurationError("max_segment_mm must be positive")
        if self.credit_sizing not in ("auto", "strict"):
            raise ConfigurationError(
                f"credit_sizing must be 'auto' or 'strict', "
                f"got {self.credit_sizing!r}"
            )

    @property
    def nodes(self) -> int:
        return self.cols * self.rows


class MeshNetwork(CreditFabricNetwork):
    """A built, runnable mesh with ICNoCNetwork-compatible API."""

    def __init__(self, config: MeshConfig, kernel: SimKernel | None = None):
        from repro.fabric.routing import XYRouting
        super().__init__(config, MeshTopology(config.cols, config.rows),
                         XYRouting(config.cols, config.rows), kernel=kernel,
                         node_prefix="m", port_names=PORT_NAMES)

    def _make_router(self, node: int) -> FabricRouter:
        x, y = self.topology.coordinates(node)
        return MeshRouter(
            self.kernel, f"m{node}", x, y,
            self.config.cols, self.config.rows,
            buffer_depth=self.config.buffer_depth,
            route=self.routing.for_node(node),
            pipeline_depth=self.pipeline_depth,
            register=self._register_components,
        )
