"""Latch-based pipeline stages (future work item 1).

"The 2-phase flow control scheme can be modified to allow the use of
latches instead of edge triggered registers. This will reduce the area as
well as the power consumption" (Section 7).

A master-slave flip-flop is two latches back to back; a transparent-latch
pipeline needs only one latch per stage, so the register bank roughly
halves. Control logic stays, so the full stage shrinks less than 2x. The
clock pin count halves as well. Timing: a latch's D-to-Q transparency
replaces the tclk->Q + tsetup sequencing overhead with its own d_to_q
delay, and level sensitivity allows slack passing (time borrowing) between
adjacent half-period stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.technology import Technology, TECH_90NM
from repro.units import frequency_from_half_period


@dataclass(frozen=True)
class LatchStageModel:
    """Latch-based variant of the pipeline stage.

    Attributes:
        register_area_fraction: share of the FF stage area that is the
            register bank (the rest is flow-control logic and buffers).
        latch_vs_ff_area: area of a latch bank relative to a FF bank (0.5
            for the two-latches-per-FF argument).
        latch_d_to_q_ps: latch transparency delay, replacing the FF's
            clk->Q + setup overhead on the critical path.
        clock_cap_fraction: latch clock-pin capacitance relative to a FF's.
    """

    register_area_fraction: float = 0.60
    latch_vs_ff_area: float = 0.5
    latch_d_to_q_ps: float = 45.0
    clock_cap_fraction: float = 0.5

    def __post_init__(self) -> None:
        for name in ("register_area_fraction", "latch_vs_ff_area",
                     "clock_cap_fraction"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1]")
        if self.latch_d_to_q_ps < 0.0:
            raise ConfigurationError("latch_d_to_q_ps must be >= 0")

    def stage_area_mm2(self, tech: Technology = TECH_90NM) -> float:
        """Area of a latch-based stage (32-bit)."""
        ff_area = tech.stage_area_mm2()
        register = ff_area * self.register_area_fraction
        control = ff_area - register
        return control + register * self.latch_vs_ff_area

    def area_saving_fraction(self, tech: Technology = TECH_90NM) -> float:
        return 1.0 - self.stage_area_mm2(tech) / tech.stage_area_mm2()

    def clock_power_saving_fraction(self) -> float:
        """Register clock-pin power saved per stage."""
        return 1.0 - self.clock_cap_fraction

    def pipeline_half_period_ps(self, length_mm: float,
                                tech: Technology = TECH_90NM) -> float:
        """Critical half-period of a latch-based pipeline segment.

        The FF sequencing overhead (clk->Q + setup) is replaced by the
        latch transparency delay; logic and wire terms are unchanged.
        """
        ff_overhead = tech.register.sequencing_overhead
        ff_half = (tech.pipeline_base_half_period_ps
                   + 2.0 * tech.buffered_wire.delay(length_mm))
        return ff_half - ff_overhead + self.latch_d_to_q_ps

    def pipeline_max_frequency(self, length_mm: float,
                               tech: Technology = TECH_90NM) -> float:
        return frequency_from_half_period(
            self.pipeline_half_period_ps(length_mm, tech)
        )


def latch_savings_table(stage_count: int, tech: Technology = TECH_90NM,
                        model: LatchStageModel | None = None
                        ) -> dict[str, float]:
    """Network-level savings of switching all stages to latches."""
    if stage_count < 0:
        raise ConfigurationError("stage_count must be >= 0")
    if model is None:
        model = LatchStageModel()
    ff_area = stage_count * tech.stage_area_mm2()
    latch_area = stage_count * model.stage_area_mm2(tech)
    return {
        "stages": float(stage_count),
        "ff_area_mm2": ff_area,
        "latch_area_mm2": latch_area,
        "area_saving_mm2": ff_area - latch_area,
        "area_saving_fraction": model.area_saving_fraction(tech),
        "clock_power_saving_fraction": model.clock_power_saving_fraction(),
        "f_max_head_to_head_ghz": model.pipeline_max_frequency(0.0, tech),
    }
