"""Extensions: the paper's Section 7 future-work items, modelled.

* latch-based pipeline stages (area/power reduction),
* non-tree topologies: ring shortcut links bridged with conventional
  mesochronous synchronizers,
* weighted skew for temporal spreading of the supply current surge
  (the model itself lives in :mod:`repro.physical.peak_current`).
"""

from repro.ext.latch_stage import LatchStageModel, latch_savings_table
from repro.ext.ring_links import RingAugmentedTree, ShortcutLink

__all__ = [
    "LatchStageModel",
    "latch_savings_table",
    "RingAugmentedTree",
    "ShortcutLink",
]
