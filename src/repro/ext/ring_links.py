"""Ring shortcut links across the tree (future work item 2).

"We plan to introduce non-tree topologies by breaking rings using
traditional mesochronous communication methods. This allows for much more
flexibility while still leveraging the advantages of the presented
architecture along the underlying tree" (Section 7).

A shortcut connects two leaves in *different* subtrees. Because the
integrated clock only guarantees phase relations along tree branches, a
shortcut crossing is a general mesochronous crossing and needs a
conventional synchronizer (:class:`~repro.clocking.mesochronous
.TwoFlopSynchronizer`), paying its latency. Routing picks, per
source/destination pair, the cheaper of the pure tree path and the best
path through one shortcut. The model is analytical (latency algebra over
the calibrated router/link delays), matching how the paper discusses the
extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocking.mesochronous import TwoFlopSynchronizer
from repro.errors import TopologyError
from repro.noc.topology import TreeTopology


@dataclass(frozen=True)
class ShortcutLink:
    """A bidirectional leaf-to-leaf shortcut with synchronized crossing."""

    leaf_a: int
    leaf_b: int
    synchronizer: TwoFlopSynchronizer = TwoFlopSynchronizer()

    @property
    def crossing_latency_cycles(self) -> float:
        return self.synchronizer.latency_cycles


class RingAugmentedTree:
    """A tree topology plus mesochronous shortcut links.

    Latency model: every router traversal costs ``router_cycles`` (1.5 for
    3x3), every shortcut costs its synchronizer latency plus one cycle of
    wire. Hop-count-level, like the paper's own Section 3 arithmetic.
    """

    def __init__(self, topology: TreeTopology,
                 shortcuts: list[ShortcutLink],
                 router_cycles: float = 1.5,
                 shortcut_wire_cycles: float = 1.0):
        for link in shortcuts:
            for leaf in (link.leaf_a, link.leaf_b):
                if not 0 <= leaf < topology.leaves:
                    raise TopologyError(f"shortcut uses unknown leaf {leaf}")
            if link.leaf_a == link.leaf_b:
                raise TopologyError("shortcut must join two distinct leaves")
        self.topology = topology
        self.shortcuts = shortcuts
        self.router_cycles = router_cycles
        self.shortcut_wire_cycles = shortcut_wire_cycles
        self.shortcut_uses = 0
        self.tree_uses = 0

    @staticmethod
    def neighbour_ring(topology: TreeTopology,
                       synchronizer: TwoFlopSynchronizer | None = None
                       ) -> "RingAugmentedTree":
        """Shortcuts between consecutive leaves in different subtrees.

        Adds a link (2k+1, 2k+2) wherever those leaves are geometric
        neighbours but tree-distant — the worst case the paper's Section 3
        concedes ("data needs to be routed to the very root of the tree, in
        order to get to a destination quite close geographically").
        """
        if synchronizer is None:
            synchronizer = TwoFlopSynchronizer()
        shortcuts = []
        for leaf in range(1, topology.leaves - 1, 2):
            if topology.hop_count(leaf, leaf + 1) > 1:
                shortcuts.append(ShortcutLink(leaf, leaf + 1, synchronizer))
        return RingAugmentedTree(topology, shortcuts)

    def tree_latency_cycles(self, src: int, dest: int) -> float:
        """Pure tree-path latency."""
        return self.topology.hop_count(src, dest) * self.router_cycles

    def latency_cycles(self, src: int, dest: int) -> float:
        """Best latency using at most one shortcut; records which won."""
        best = self.tree_latency_cycles(src, dest)
        used_shortcut = False
        for link in self.shortcuts:
            for a, b in ((link.leaf_a, link.leaf_b),
                         (link.leaf_b, link.leaf_a)):
                cost = link.crossing_latency_cycles + self.shortcut_wire_cycles
                if src != a:
                    cost += self.tree_latency_cycles(src, a)
                if b != dest:
                    cost += self.tree_latency_cycles(b, dest)
                if cost < best:
                    best = cost
                    used_shortcut = True
        if used_shortcut:
            self.shortcut_uses += 1
        else:
            self.tree_uses += 1
        return best

    def average_latency_cycles(self, pairs: list[tuple[int, int]]) -> float:
        if not pairs:
            raise TopologyError("need at least one pair")
        return sum(self.latency_cycles(s, d) for s, d in pairs) / len(pairs)

    def adjacent_pair_improvement(self) -> dict[str, float]:
        """Latency with/without shortcuts for consecutive-leaf pairs."""
        pairs = [(leaf, leaf + 1) for leaf in range(self.topology.leaves - 1)]
        tree_only = sum(self.tree_latency_cycles(s, d)
                        for s, d in pairs) / len(pairs)
        augmented = self.average_latency_cycles(pairs)
        return {
            "pairs": float(len(pairs)),
            "tree_only_cycles": tree_only,
            "augmented_cycles": augmented,
            "speedup": tree_only / augmented,
        }
