"""The flow-control designs the paper's scheme replaces — as an ablation.

Section 5: "Traditionally, in order to realize back pressure flow control,
extra stall buffers are needed to absorb incoming data, when the forward
path is congested. Alternatively, the pipeline should be clocked at double
the speed of the data – at double clock frequency or using dual-edge
triggered registers – reserving one cycle for data transfer, one for
congestion control."

This module implements the first alternative faithfully enough to compare:
a **same-edge** pipeline whose stages carry a 2-deep skid buffer (the
stall buffer that absorbs the flit already in flight when ``stop``
arrives one cycle late), plus cost models for both alternatives. The
ablation bench then shows all three schemes reach full throughput, but at
different register/clock costs:

| scheme | extra registers per stage | clock rate |
|---|---|---|
| stall-buffer (skid) | +1 flit-wide buffer | 1x |
| double-clocked | none | 2x (or dual-edge FFs) |
| IC-NoC 2-phase (paper) | none | 1x |
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.noc.flit import Flit
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel
from repro.sim.signal import Signal
from repro.tech.technology import Technology, TECH_90NM
from repro.telemetry.metrics import TimeWeightedGauge


class SkidChannel:
    """Same-edge valid/stop channel (stop observed one cycle late)."""

    def __init__(self, kernel: SimKernel, name: str):
        self.flit: Signal = kernel.signal(f"{name}.flit", initial=None)
        self.stop: Signal = kernel.signal(f"{name}.stop", initial=False)


class SkidBufferStage(ClockedComponent):
    """One stage of a conventional same-edge elastic pipeline.

    All stages share parity 0 (single-edge clocking). Because ``stop``
    takes a full cycle to reach the producer, a stage must be able to
    absorb one in-flight flit beyond its output register — the 2-deep
    skid buffer. Asserts ``stop`` upstream when the buffer is half full.
    """

    CAPACITY = 2  # output register + one skid slot

    def __init__(self, kernel: SimKernel, name: str,
                 upstream: SkidChannel, downstream: SkidChannel):
        super().__init__(name, parity=0)
        self.upstream = upstream
        self.downstream = downstream
        self.buffer: deque[Flit] = deque()
        self.flits_passed = 0
        self.occupancy = TimeWeightedGauge(kernel.tick)
        kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        active = False
        # 1. Receive whatever is in flight (cannot be refused: that is
        #    what the skid slot is for).
        payload = self.upstream.flit.value
        if payload is not None:
            flit, sent_tick = payload
            if sent_tick == tick - 2:
                if len(self.buffer) >= self.CAPACITY:
                    raise ConfigurationError(
                        f"{self.name}: skid overflow — stop arrived too late"
                    )
                self.buffer.append(flit)
                active = True
        # Sampled at the same point the old ad-hoc peak counter was, so
        # the gauge's peak reproduces its numbers exactly — and adds the
        # time-weighted mean for free.
        self.occupancy.update(tick, len(self.buffer))
        # 2. Forward if downstream did not signal stop (sampled 1 cycle
        #    old). Receiving first models the combinational ready path of
        #    a real skid buffer: a flit can enter and claim the output
        #    register in the same cycle, keeping 1 cycle/hop latency.
        if self.buffer and not self.downstream.stop.value:
            flit = self.buffer.popleft()
            self.downstream.flit.set((flit, tick), tick)
            self.flits_passed += 1
            active = True
        # 3. Backpressure: stop while anything is held — by the time the
        #    producer sees it, exactly one more flit may arrive (skid).
        #    Written on change only, so an idle stage drives nothing.
        stop = len(self.buffer) >= self.CAPACITY - 1
        if stop != bool(self.upstream.stop.value):
            self.upstream.stop.set(stop, tick)
            active = True
        if not active:
            # Fixed point: nothing arrived, nothing moved (empty, or
            # blocked by a stop that only a signal change can lift).
            self.sleep_until(self.upstream.flit, self.downstream.stop)

    @property
    def peak_occupancy(self) -> int:
        """Deepest the skid buffer ever got (gauge-backed)."""
        return self.occupancy.peak


class SkidSource(ClockedComponent):
    """Injects flits into a skid pipeline, honouring stop."""

    def __init__(self, kernel: SimKernel, name: str,
                 downstream: SkidChannel):
        super().__init__(name, parity=0)
        self.downstream = downstream
        self.queue: deque[Flit] = deque()
        kernel.add_component(self)

    def send(self, flits: Iterable[Flit]) -> None:
        self.queue.extend(flits)
        self.wake()

    def on_edge(self, tick: int) -> None:
        if self.queue and not self.downstream.stop.value:
            self.downstream.flit.set((self.queue.popleft(), tick), tick)
        elif self.queue:
            # Blocked: only a change of the stop wire can unblock us.
            self.sleep_until(self.downstream.stop)
        else:
            # Drained: wait for the next send().
            self.sleep_until()


class SkidSink(ClockedComponent):
    """Consumes from a skid pipeline with an optional stall schedule."""

    def __init__(self, kernel: SimKernel, name: str, upstream: SkidChannel,
                 ready: Callable[[int], bool] | None = None):
        super().__init__(name, parity=0)
        self.upstream = upstream
        self._ready = ready if ready is not None else (lambda tick: True)
        self.buffer: deque[Flit] = deque()
        self.received: list[tuple[int, Flit]] = []
        kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        active = False
        payload = self.upstream.flit.value
        if payload is not None:
            flit, sent_tick = payload
            if sent_tick == tick - 2:
                if len(self.buffer) >= 2:
                    raise ConfigurationError(f"{self.name}: sink overflow")
                self.buffer.append(flit)
                active = True
        if self.buffer and self._ready(tick):
            self.received.append((tick, self.buffer.popleft()))
            active = True
        stop = len(self.buffer) >= 1
        if stop != bool(self.upstream.stop.value):
            self.upstream.stop.set(stop, tick)
            active = True
        if not active and not self.buffer:
            # Empty and nothing in flight; the ready schedule is only
            # consulted while data waits, so the next edge is a no-op
            # until the flit wire changes.
            self.sleep_until(self.upstream.flit)

    @property
    def flits(self) -> list[Flit]:
        return [flit for _, flit in self.received]


def build_skid_pipeline(kernel: SimKernel, name: str, stages: int,
                        ready: Callable[[int], bool] | None = None):
    """Source -> N skid stages -> sink, all clocked on the same edge."""
    if stages < 0:
        raise ConfigurationError("stage count must be >= 0")
    channels = [SkidChannel(kernel, f"{name}.ch{i}")
                for i in range(stages + 1)]
    source = SkidSource(kernel, f"{name}.src", channels[0])
    stage_list = [
        SkidBufferStage(kernel, f"{name}.s{i}", channels[i], channels[i + 1])
        for i in range(stages)
    ]
    sink = SkidSink(kernel, f"{name}.sink", channels[stages], ready=ready)
    return source, stage_list, sink


# --- cost models ----------------------------------------------------------

def scheme_cost_table(stages: int,
                      tech: Technology = TECH_90NM) -> list[dict]:
    """Register/clock cost of the three flow-control schemes.

    The register bank (data flits held per stage) dominates stage area;
    the IC-NoC stage area is the paper's 0.0015 mm^2. The skid scheme adds
    one flit-wide buffer per stage (~60% of a stage re-spent on storage);
    the double-clock scheme keeps one register but toggles its clock twice
    per data cycle.
    """
    if stages < 0:
        raise ConfigurationError("stages must be >= 0")
    stage = tech.stage_area_mm2()
    register_share = 0.60  # register bank share of the stage area
    skid_extra = stage * register_share  # one extra flit of storage
    return [
        {
            "scheme": "IC-NoC 2-phase (paper)",
            "registers_per_stage": 1,
            "area_mm2": stages * stage,
            "relative_clock_energy": 1.0,
        },
        {
            "scheme": "stall-buffer (skid)",
            "registers_per_stage": 2,
            "area_mm2": stages * (stage + skid_extra),
            "relative_clock_energy": 1.0 + register_share,
        },
        {
            "scheme": "double-clocked",
            "registers_per_stage": 1,
            "area_mm2": stages * stage,
            "relative_clock_energy": 2.0,
        },
    ]
