"""Structure descriptions of the credit-based fabrics.

A credit-fabric topology is a plain structural object the generic
:class:`~repro.fabric.network.CreditFabricNetwork` builder consumes:

* ``nodes`` — endpoint count (one local port per node);
* ``max_ports`` — uniform router port count (local = port 0);
* ``links()`` — the bidirectional neighbour pairs ``(a, a_port, b,
  b_port)`` in a deterministic build order (component and signal
  registration order follows it, which is what makes activity-driven and
  naive runs bit-identical);
* ``hop_count`` / ``worst_case_hops`` — the structural analysis the
  stats and the paper-style comparisons use.

:class:`~repro.mesh.topology.MeshTopology` already satisfies this
protocol (it grew ``links()``/``max_ports`` in the fabric refactor); this
module adds the ring-closing fabrics:

* :class:`TorusTopology` — a mesh whose rows and columns wrap around.
  Halves the worst-case hop count (``~sqrt(N)`` vs the mesh's
  ``~2*sqrt(N)``) at the price of wrap links and the bubble rule.
* :class:`RingTopology` — the minimal ring-closing fabric: 3-port
  routers, worst case ``N/2 + 1`` hops. Structurally the simplest
  mesochronous baseline, and the stress test for the bubble rule.

All of these have converging paths (two routers joined by more than one
path), so none can legally carry the paper's *integrated* clock
distribution — the registry's build-time capability check enforces it.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import TopologyError
from repro.fabric.routing import EAST, NORTH, RING_CCW, RING_CW, SOUTH, WEST

#: One bidirectional neighbour connection: (a, a_port, b, b_port).
LinkSpec = tuple[int, int, int, int]


def square_side(nodes: int, what: str) -> int:
    """Side length of a square grid fabric (nodes must be square)."""
    side = math.isqrt(nodes)
    if side * side != nodes:
        raise TopologyError(f"{what} needs a square node count, got {nodes}")
    return side


class TorusTopology:
    """A cols x rows 2-D torus, one network port per router.

    Nodes are numbered row-major like the mesh: node = y * cols + x.
    """

    max_ports = 5

    def __init__(self, cols: int, rows: int | None = None):
        if rows is None:
            rows = cols
        if cols < 2 or rows < 2:
            raise TopologyError("torus needs at least 2x2 routers")
        self.cols = cols
        self.rows = rows

    @property
    def nodes(self) -> int:
        return self.cols * self.rows

    @property
    def router_count(self) -> int:
        return self.nodes

    def coordinates(self, node: int) -> tuple[int, int]:
        if not 0 <= node < self.nodes:
            raise TopologyError(f"unknown node {node}")
        return (node % self.cols, node // self.cols)

    def node_at(self, x: int, y: int) -> int:
        return (y % self.rows) * self.cols + (x % self.cols)

    def links(self) -> Iterator[LinkSpec]:
        """Mesh-interior links first (same order as the mesh), then the
        row/column wrap links — a fixed, documented build order."""
        cols, rows = self.cols, self.rows
        for node in range(self.nodes):
            x, y = node % cols, node // cols
            if x < cols - 1:
                yield (node, EAST, self.node_at(x + 1, y), WEST)
            if y < rows - 1:
                yield (node, SOUTH, self.node_at(x, y + 1), NORTH)
        for y in range(rows):
            yield (self.node_at(cols - 1, y), EAST, self.node_at(0, y), WEST)
        for x in range(cols):
            yield (self.node_at(x, rows - 1), SOUTH, self.node_at(x, 0), NORTH)

    def hop_count(self, src: int, dest: int) -> int:
        """Routers traversed = wrap Manhattan distance + 1."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dest)
        ax = abs(dx - sx)
        ay = abs(dy - sy)
        return min(ax, self.cols - ax) + min(ay, self.rows - ay) + 1

    def worst_case_hops(self) -> int:
        return self.cols // 2 + self.rows // 2 + 1

    def link_count(self) -> int:
        """Bidirectional router-to-router links (wraps included)."""
        return 2 * self.nodes

    def describe(self) -> str:
        return f"{self.cols}x{self.rows} torus"


class RingTopology:
    """A bidirectional ring of ``nodes`` 3-port routers."""

    max_ports = 3

    def __init__(self, nodes: int):
        if nodes < 2:
            raise TopologyError("ring needs at least 2 routers")
        self.nodes = nodes

    @property
    def router_count(self) -> int:
        return self.nodes

    def links(self) -> Iterator[LinkSpec]:
        for node in range(self.nodes):
            yield (node, RING_CW, (node + 1) % self.nodes, RING_CCW)

    def hop_count(self, src: int, dest: int) -> int:
        if not (0 <= src < self.nodes and 0 <= dest < self.nodes):
            raise TopologyError(f"unknown nodes {src}->{dest}")
        d = abs(dest - src)
        return min(d, self.nodes - d) + 1

    def worst_case_hops(self) -> int:
        return self.nodes // 2 + 1

    def link_count(self) -> int:
        return self.nodes

    def describe(self) -> str:
        return f"{self.nodes}-node ring"
