"""The concentrated tree: multiple network endpoints per NI.

A standard concentration step for tree NoCs: ``concentration`` endpoints
share each leaf port (and its NI), so an N-endpoint system needs only
``N / concentration`` leaves — fewer routers, shorter trees, at the price
of multiplexing the shared injection port. Because the link structure is
still a tree, the fabric remains *integrated-clock legal*: no converging
paths, the clock rides the data links exactly as in the paper.

Addressing: endpoint ``e`` hangs off leaf ``e // concentration``. The
routers run the same up*/down* strategy with the endpoint-to-leaf mapping
plugged in (:func:`repro.fabric.routing.tree_updown_route`'s
``dest_leaf``); the NIs and the whole tree stack are reused unchanged.

Endpoint pairs sharing a leaf never enter the network — the concentrator
mux delivers them locally in one clock cycle (a tree router would see the
packet leave and re-enter the same port, a structural U-turn). Local
deliveries use an exact-tick kernel timer, so both kernel modes observe
identical delivery ticks.

**Hop convention**: a hop is one switching element on the datapath —
every fabric records the routers a packet traverses, and the same-leaf
mux turnaround records **1** hop for its one-cycle local mux (it is the
sole switch on that path). Recording 0 would silently deflate mean-hop
and energy-per-flit statistics the physical comparisons divide by.
Cross-leaf deliveries count tree routers exactly as the flat tree does;
the muxes they also pass through are folded into the shared NI (the
energy model in :mod:`repro.physical.descriptor` still prices them).
"""

from __future__ import annotations

from repro.errors import ConfigurationError, TopologyError
from repro.fabric.routing import tree_updown_route
from repro.noc.network import ICNoCNetwork, NetworkConfig
from repro.noc.packet import Packet
from repro.sim.kernel import SimKernel


class ConcentratedTreeNetwork(ICNoCNetwork):
    """A tree IC-NoC whose leaves each serve ``concentration`` endpoints.

    ``config.leaves`` counts the *tree* leaves; the network serves
    ``config.leaves * concentration`` endpoints through the standard
    ``send`` / ``drain`` / ``stats`` API (all addresses are endpoint
    addresses).
    """

    def __init__(self, config: NetworkConfig, concentration: int = 4,
                 kernel: SimKernel | None = None):
        if concentration < 1:
            raise ConfigurationError("concentration must be >= 1")
        self.concentration = concentration
        self._local_delivered: list[Packet] = []
        super().__init__(config, kernel=kernel)

    # -- addressing -------------------------------------------------------

    @property
    def endpoints(self) -> int:
        return self.config.leaves * self.concentration

    def leaf_of(self, endpoint: int) -> int:
        """The tree leaf an endpoint hangs off."""
        return endpoint // self.concentration

    # -- construction hooks ----------------------------------------------

    def _route_for(self, node):
        return tree_updown_route(self.topology, node,
                                 name=f"r{node.index}",
                                 dest_leaf=self.leaf_of)

    def _make_delivery_hook(self, leaf: int):
        def hook(packet: Packet, tick: int) -> None:
            original = self._inflight.pop(packet.packet_id, None)
            if original is not None:
                packet.inject_tick = original.inject_tick
            hops = self.topology.hop_count(self.leaf_of(packet.src),
                                           self.leaf_of(packet.dest))
            self.stats.record_delivery(packet, hops)
            handler = self._handlers.get(packet.dest)
            if handler is not None:
                handler(packet, tick)
        return hook

    # -- run-time API ------------------------------------------------------

    def set_handler(self, endpoint: int, handler) -> None:
        if not 0 <= endpoint < self.endpoints:
            raise TopologyError(f"unknown endpoint {endpoint}")
        self._handlers[endpoint] = handler

    def send(self, packet: Packet) -> None:
        if not 0 <= packet.dest < self.endpoints:
            raise TopologyError(f"unknown destination {packet.dest}")
        if packet.src == packet.dest:
            raise TopologyError("src == dest: packets never enter the NoC")
        self.stats.packets_injected += 1
        self.kernel.emit("inject", packet)
        src_leaf = self.leaf_of(packet.src)
        if src_leaf == self.leaf_of(packet.dest):
            self._deliver_locally(packet)
            return
        self._inflight[packet.packet_id] = packet
        # Straight to the shared NI's egress half (the NI's own submit
        # checks the one-leaf-one-address invariant the mux relaxes).
        self.nis[src_leaf].source.submit(packet)

    def _deliver_locally(self, packet: Packet) -> None:
        """Concentrator-mux turnaround: one clock cycle, no network."""
        packet.inject_tick = self.kernel.tick

        def deliver(tick: int, packet: Packet = packet) -> None:
            packet.eject_tick = tick
            # One switching element traversed (the mux) — see the module
            # docstring's hop convention.
            self.stats.record_delivery(packet, hops=1)
            self._local_delivered.append(packet)
            handler = self._handlers.get(packet.dest)
            if handler is not None:
                handler(packet, tick)
            self.kernel.emit("packet", packet)

        self.kernel.call_at(self.kernel.tick + 2, deliver)

    @property
    def delivered(self) -> list[Packet]:
        out = list(self._local_delivered)
        for ni in self.nis:
            out.extend(ni.delivered)
        return out

    def describe(self) -> str:
        return (f"{super().describe()}, concentration {self.concentration} "
                f"({self.endpoints} endpoints)")
