"""The topology registry: one place where fabrics declare themselves.

Each registered topology names its structure, routing strategy, and —
central to the paper — its **clock distribution capability**:

* ``"integrated"`` — the clock rides the data links (paper Section 3).
  Legal only for fabrics whose link structure is a tree: "no converging
  paths are allowed in the network". Tree and concentrated tree qualify.
* ``"mesochronous"`` — conventional distribution with per-hop
  synchronizers (the PALS/GALS-style fallback meshes need). Any
  structure qualifies; it is the only option for ring-closing fabrics
  (mesh, torus, ring).

The capability is *checked at build time*: requesting ``integrated``
clocking for a converging-path fabric raises
:class:`~repro.errors.ConfigurationError` — the registry encodes the
paper's architectural claim as an invariant, not a comment.

Usage::

    from repro.fabric.registry import FabricConfig, build_fabric

    net = build_fabric("torus", ports=64)           # default clocking
    net = FabricConfig(topology="ctree", ports=64,
                       concentration=4).build()     # integrated clock

A new fabric is ~30 lines of routing strategy plus a structure
description and one :func:`register_topology` call — see docs/fabric.md.

Builders import their network modules lazily so the registry can be
imported from anywhere (CLI, sweep workers, the networks themselves)
without circular imports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.fabric.allocator import ALLOCATOR_NAMES, make_allocator
from repro.tech.technology import Technology, TECH_90NM

#: Clock distribution capabilities.
CLOCK_INTEGRATED = "integrated"
CLOCK_MESOCHRONOUS = "mesochronous"


#: Link-level flow-control capabilities.
FLOW_WORMHOLE = "wormhole"
FLOW_VC = "vc"


@dataclass(frozen=True)
class TopologyEntry:
    """One registered fabric.

    Attributes:
        name: registry key (CLI ``--topology`` value).
        description: one-line summary for tables and docs.
        clock_distribution: supported schemes, the first is the default.
            ``integrated`` may appear only when ``tree_legal``.
        tree_legal: the link structure has no converging paths, so the
            integrated clock distribution of the paper applies.
        flow_control: supported link-level flow-control flavours, the
            first is the default. ``"vc"`` (virtual channels,
            :mod:`repro.fabric.vc`) requires at least one entry in
            ``vc_policies``.
        vc_policies: supported VC-assignment policies
            (:mod:`repro.fabric.routing`), the first is the default —
            e.g. ``dateline`` deadlock avoidance, ``escape`` adaptive.
        allocators: supported router allocation policies
            (:mod:`repro.fabric.allocator`). Empty means the fabric has
            no allocator knob at all (the handshake tree family);
            ``"rr"`` round-robin is always accepted where any policy
            is. ``"weighted"``/``"escape-reentry"`` require VC flow
            control, and ``"escape-reentry"`` additionally requires the
            ``escape`` VC policy.
        builder: ``FabricConfig -> network`` (lazy-imports its module).
        validate: optional extra config check (port-count shape etc.).
        physical: ``(network, name, clock_distribution) ->``
            :class:`~repro.physical.descriptor.PhysicalModel` — the
            fabric's physical cost descriptor (area, flit energy, clock
            power), consumed by :mod:`repro.physical`. Lazy-imports like
            ``builder``; None means the fabric publishes no physical
            model and the generic reports refuse it loudly.
        supports_pipeline: the fabric honours the ``pipeline_depth`` /
            ``segment_links`` / ``credit_sizing`` knobs (the credit
            fabrics). The tree family does not: its handshake routers
            are a fixed forward pipeline and its links are *always*
            segmented at ``max_segment_mm`` by construction, so the
            knobs would be silently meaningless there — requesting them
            raises instead.
    """

    name: str
    description: str
    clock_distribution: tuple[str, ...]
    tree_legal: bool
    builder: Callable[["FabricConfig"], Any]
    validate: Callable[["FabricConfig"], None] | None = None
    flow_control: tuple[str, ...] = (FLOW_WORMHOLE,)
    vc_policies: tuple[str, ...] = ()
    allocators: tuple[str, ...] = ()
    physical: Callable[[Any, str, str], Any] | None = None
    supports_pipeline: bool = False

    def __post_init__(self) -> None:
        if not self.clock_distribution:
            raise ConfigurationError(f"{self.name}: no clocking schemes")
        if CLOCK_INTEGRATED in self.clock_distribution and not self.tree_legal:
            raise ConfigurationError(
                f"{self.name}: integrated clocking requires a tree-legal "
                f"structure (no converging paths)"
            )
        if not self.flow_control:
            raise ConfigurationError(f"{self.name}: no flow control")
        if FLOW_VC in self.flow_control and not self.vc_policies:
            raise ConfigurationError(
                f"{self.name}: VC flow control needs at least one "
                f"VC-assignment policy"
            )
        for allocator in self.allocators:
            if allocator not in ALLOCATOR_NAMES:
                raise ConfigurationError(
                    f"{self.name}: unknown allocator {allocator!r} "
                    f"(known: {', '.join(ALLOCATOR_NAMES)})"
                )
            if allocator != "rr" and FLOW_VC not in self.flow_control:
                raise ConfigurationError(
                    f"{self.name}: allocator {allocator!r} needs VC flow "
                    f"control"
                )
        if ("escape-reentry" in self.allocators
                and "escape" not in self.vc_policies):
            raise ConfigurationError(
                f"{self.name}: escape-reentry allocation needs the "
                f"'escape' VC policy"
            )

    @property
    def default_clocking(self) -> str:
        return self.clock_distribution[0]

    @property
    def default_flow_control(self) -> str:
        return self.flow_control[0]


_REGISTRY: dict[str, TopologyEntry] = {}


def register_topology(entry: TopologyEntry) -> TopologyEntry:
    """Register a fabric (last registration wins, enabling overrides)."""
    _REGISTRY[entry.name] = entry
    return entry


def get_topology(name: str) -> TopologyEntry:
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown topology {name!r}; registered: {known}"
        )
    return entry


def topology_names() -> tuple[str, ...]:
    """Registered names, in registration order."""
    return tuple(_REGISTRY)


def topology_table() -> list[dict[str, str]]:
    """One row per registered fabric (CLI/docs material)."""
    rows = []
    for entry in _REGISTRY.values():
        flow = "+".join(entry.flow_control)
        if entry.vc_policies:
            flow += f" ({'/'.join(entry.vc_policies)})"
        rows.append({
            "name": entry.name,
            "clocking": "+".join(entry.clock_distribution),
            "tree_legal": "yes" if entry.tree_legal else "no",
            "flow_control": flow,
            "allocators": "/".join(entry.allocators) or "-",
            "description": entry.description,
        })
    return rows


@dataclass(frozen=True)
class FabricConfig:
    """Picklable spec of one fabric instance, built via the registry.

    Only ``topology`` and ``ports`` matter for every fabric; the rest are
    per-family knobs with sensible defaults (tree arity, concentration,
    grid rows, credit buffer depth, floorplan dimensions).

    ``clocking`` selects the clock distribution scheme; None means the
    topology's default. ``flow_control`` selects the link-level flow
    control (``"wormhole"`` everywhere; ``"vc"`` enables virtual
    channels on the fabrics that register the capability, with
    ``n_vcs`` channels per port and the ``vc_policy`` VC-assignment
    policy — None means the topology's default policy). ``allocator``
    selects the routers' allocation policy
    (:mod:`repro.fabric.allocator`): ``"rr"`` round-robin (the
    default, every fabric), ``"weighted"`` per-VC bandwidth
    reservations (``reservations`` as ``((vc, fraction), ...)``), or
    ``"escape-reentry"`` (round-robin plus Duato-legal escape-to-
    adaptive re-entry under the escape policy). ``priority_flows``
    (``((src, dest), ...)``, escape policy only) reserves the top VC
    as a priority lane for the named flows — the QoS target a weighted
    reservation meters. All capability checks run in ``__post_init__``
    — an illegal pairing (e.g. a torus with the integrated clock, a
    tree with VCs, reservations without the weighted allocator) never
    constructs, which is what the build-time guarantee means.
    """

    topology: str = "tree"
    ports: int = 64
    clocking: str | None = None
    arity: int = 2              # tree family
    concentration: int = 4      # ctree
    rows: int | None = None     # grid fabrics; None = square
    buffer_depth: int = 4       # credit fabrics
    flow_control: str = FLOW_WORMHOLE
    n_vcs: int = 2              # per-port virtual channels (vc only)
    vc_policy: str | None = None
    allocator: str = "rr"       # router allocation policy
    reservations: tuple = ()    # ((vc, fraction), ...) — weighted only
    priority_flows: tuple = ()  # ((src, dest), ...) — escape policy only
    chip_width_mm: float = 10.0
    chip_height_mm: float = 10.0
    max_segment_mm: float = 1.25
    pipeline_depth: int = 1     # credit fabrics: staged routers
    segment_links: bool = False  # credit fabrics: pipeline long links
    credit_sizing: str = "auto"  # "auto" grows FIFOs, "strict" raises
    tech: Technology = TECH_90NM
    activity_driven: bool = True
    backend: str = "dispatch"   # "dispatch" | "array" | "auto"

    def __post_init__(self) -> None:
        entry = get_topology(self.topology)
        if self.ports < 2:
            raise ConfigurationError("a fabric needs at least 2 ports")
        # Normalize sequence knobs to nested tuples so the (frozen)
        # config stays hashable and picklable whatever the caller built
        # them from (CLI argument lists, JSON, ...).
        object.__setattr__(self, "reservations",
                           tuple((int(vc), float(fraction))
                                 for vc, fraction in self.reservations))
        object.__setattr__(self, "priority_flows",
                           tuple((int(src), int(dest))
                                 for src, dest in self.priority_flows))
        if self.backend not in ("dispatch", "array", "auto"):
            raise ConfigurationError(
                f"backend must be 'dispatch', 'array' or 'auto', "
                f"got {self.backend!r}"
            )
        if self.backend == "array":
            # Never silently fall back: the array backend lowers only the
            # credit fabrics at pipeline depth 1 on unsegmented links.
            # "auto" picks the fastest supported backend instead.
            if not entry.supports_pipeline:
                raise ConfigurationError(
                    f"backend='array' cannot lower topology "
                    f"{self.topology!r}: the tree family's handshake "
                    f"pipeline has no array lowering; use "
                    f"backend='dispatch' (or 'auto' to fall back)"
                )
            if self.pipeline_depth != 1:
                raise ConfigurationError(
                    f"backend='array' does not support pipeline_depth > 1 "
                    f"(got {self.pipeline_depth}); use backend='dispatch' "
                    f"(or 'auto' to fall back)"
                )
            if self.segment_links:
                raise ConfigurationError(
                    "backend='array' does not support segmented links; "
                    "use backend='dispatch' (or 'auto' to fall back)"
                )
            if self.allocator == "weighted":
                raise ConfigurationError(
                    "backend='array' has no lowering for the weighted "
                    "allocator; use backend='dispatch' (or 'auto' to "
                    "fall back)"
                )
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        if self.max_segment_mm <= 0.0:
            raise ConfigurationError("max_segment_mm must be positive")
        if self.credit_sizing not in ("auto", "strict"):
            raise ConfigurationError(
                f"credit_sizing must be 'auto' or 'strict', "
                f"got {self.credit_sizing!r}"
            )
        if not entry.supports_pipeline:
            # Never silently ignore a knob (same contract as vc_policy
            # under wormhole): the tree family's routers are a fixed
            # handshake pipeline and its links are always segmented.
            if self.pipeline_depth != 1:
                raise ConfigurationError(
                    f"pipeline_depth only applies to credit fabrics; "
                    f"topology {self.topology!r} has a fixed router "
                    f"pipeline"
                )
            if self.segment_links:
                raise ConfigurationError(
                    f"segment_links only applies to credit fabrics; "
                    f"topology {self.topology!r} always segments its "
                    f"links at max_segment_mm"
                )
            if self.credit_sizing != "auto":
                raise ConfigurationError(
                    f"credit_sizing only applies to credit fabrics; "
                    f"topology {self.topology!r} uses handshake flow "
                    f"control"
                )
        if self.clocking is not None and \
                self.clocking not in entry.clock_distribution:
            raise ConfigurationError(
                f"topology {self.topology!r} cannot run "
                f"{self.clocking!r} clock distribution (supported: "
                f"{', '.join(entry.clock_distribution)})"
            )
        if self.flow_control not in entry.flow_control:
            raise ConfigurationError(
                f"topology {self.topology!r} cannot run "
                f"{self.flow_control!r} flow control (supported: "
                f"{', '.join(entry.flow_control)})"
            )
        if self.flow_control == FLOW_VC:
            if self.n_vcs < 2:
                raise ConfigurationError(
                    "VC flow control needs n_vcs >= 2"
                )
            if self.vc_policy is not None and \
                    self.vc_policy not in entry.vc_policies:
                raise ConfigurationError(
                    f"topology {self.topology!r} has no VC policy "
                    f"{self.vc_policy!r} (supported: "
                    f"{', '.join(entry.vc_policies)})"
                )
        elif self.vc_policy is not None:
            raise ConfigurationError(
                "vc_policy only applies with flow_control='vc'"
            )
        elif self.n_vcs != 2:
            # Symmetric with vc_policy: a VC knob is never silently
            # ignored on a build that cannot honour it. (An explicit
            # n_vcs=2 under wormhole is indistinguishable from the
            # default and equally without effect.)
            raise ConfigurationError(
                "n_vcs only applies with flow_control='vc'"
            )
        if self.allocator not in ALLOCATOR_NAMES:
            raise ConfigurationError(
                f"unknown allocator {self.allocator!r}; known: "
                f"{', '.join(ALLOCATOR_NAMES)}"
            )
        if self.allocator != "rr":
            if self.flow_control != FLOW_VC:
                raise ConfigurationError(
                    f"allocator {self.allocator!r} only applies with "
                    f"flow_control='vc' (single-VC routers have no "
                    f"VC stage to meter)"
                )
            if self.allocator not in entry.allocators:
                raise ConfigurationError(
                    f"topology {self.topology!r} has no allocator "
                    f"{self.allocator!r} (supported: "
                    f"{', '.join(entry.allocators) or 'none'})"
                )
            if (self.allocator == "escape-reentry"
                    and self.resolved_vc_policy != "escape"):
                raise ConfigurationError(
                    "escape-reentry allocation needs the 'escape' VC "
                    "policy (there is no escape subnetwork to re-enter "
                    "from otherwise)"
                )
        # Single-source reservation checks (duplicates, fraction range,
        # sum <= 1, weighted-only) from the allocator constructor; VC
        # indices need the config's n_vcs on top.
        make_allocator(self.allocator, self.reservations)
        for vc, _fraction in self.reservations:
            if not 0 <= vc < self.n_vcs:
                raise ConfigurationError(
                    f"reservation names vc{vc} but the fabric has "
                    f"{self.n_vcs} VCs"
                )
        if self.priority_flows:
            if self.resolved_vc_policy != "escape":
                raise ConfigurationError(
                    "priority_flows need the 'escape' VC policy (it "
                    "reserves the priority lane)"
                )
            for src, dest in self.priority_flows:
                if not (0 <= src < self.ports and 0 <= dest < self.ports):
                    raise ConfigurationError(
                        f"priority flow ({src}, {dest}) outside the "
                        f"fabric's {self.ports} ports"
                    )
                if src == dest:
                    raise ConfigurationError(
                        f"priority flow ({src}, {dest}): src == dest "
                        f"never enters the fabric"
                    )
        if entry.validate is not None:
            entry.validate(self)

    @property
    def clock_distribution(self) -> str:
        """The resolved clocking scheme."""
        return self.clocking or get_topology(self.topology).default_clocking

    @property
    def resolved_vc_policy(self) -> str | None:
        """The VC-assignment policy in force (None under wormhole)."""
        if self.flow_control != FLOW_VC:
            return None
        if self.vc_policy is not None:
            return self.vc_policy
        return get_topology(self.topology).vc_policies[0]

    @property
    def resolved_allocator(self) -> str:
        """The router allocation policy in force (validated already)."""
        return self.allocator

    def build(self):
        """Instantiate the network (any registered fabric, same API)."""
        return get_topology(self.topology).builder(self)


def build_fabric(topology: str, ports: int = 64, **kwargs):
    """One-call build: ``build_fabric("ring", ports=16)``."""
    return FabricConfig(topology=topology, ports=ports, **kwargs).build()


# -- the stock fabrics ----------------------------------------------------


def _validate_tree(config: FabricConfig) -> None:
    if config.arity < 2:
        raise ConfigurationError("tree arity must be >= 2")
    _require_power(config.ports, config.arity, "tree ports")


def _validate_ctree(config: FabricConfig) -> None:
    if config.concentration < 1:
        raise ConfigurationError("concentration must be >= 1")
    if config.ports % config.concentration:
        raise ConfigurationError(
            f"ctree ports ({config.ports}) must be a multiple of the "
            f"concentration ({config.concentration})"
        )
    leaves = config.ports // config.concentration
    if leaves < config.arity:
        raise ConfigurationError(
            f"ctree needs >= {config.arity} leaves after concentration, "
            f"got {leaves}"
        )
    _require_power(leaves, config.arity, "ctree leaves")


def _validate_vc(config: FabricConfig) -> None:
    """Config-time VC checks, single-sourced from the policies.

    Constructing the resolved policy (and discarding it) runs exactly
    the shape checks the build would — even dateline VC counts, the
    torus escape's three-VC minimum — so config-time validation can
    never drift from build-time behaviour.
    """
    if config.flow_control != FLOW_VC:
        return
    from repro.fabric.network import _grid_shape, make_vc_policy
    if config.topology == "ring":
        make_vc_policy(config)
    else:
        cols, rows = _grid_shape(config, config.topology)
        make_vc_policy(config, cols, rows)


def _validate_grid(config: FabricConfig) -> None:
    rows = config.rows
    if rows is not None:
        if rows < 2 or config.ports % rows or config.ports // rows < 2:
            raise ConfigurationError(
                f"grid of {config.ports} ports cannot have {rows} rows"
            )
    else:
        side = math.isqrt(config.ports)
        if side * side != config.ports or side < 2:
            raise ConfigurationError(
                f"square grid needs a square port count >= 4, "
                f"got {config.ports}"
            )
    _validate_vc(config)


def _require_power(value: int, base: int, what: str) -> None:
    count = 1
    while count < value:
        count *= base
    if count != value:
        raise ConfigurationError(
            f"{what} must be a power of {base}, got {value}"
        )


def _tree_network_config(config: FabricConfig, leaves: int):
    from repro.noc.network import NetworkConfig
    return NetworkConfig(
        leaves=leaves, arity=config.arity,
        chip_width_mm=config.chip_width_mm,
        chip_height_mm=config.chip_height_mm,
        max_segment_mm=config.max_segment_mm,
        tech=config.tech,
        activity_driven=config.activity_driven,
    )


def _build_tree(config: FabricConfig):
    from repro.noc.network import ICNoCNetwork
    return ICNoCNetwork(_tree_network_config(config, config.ports))


def _build_ctree(config: FabricConfig):
    from repro.fabric.ctree import ConcentratedTreeNetwork
    leaves = config.ports // config.concentration
    return ConcentratedTreeNetwork(_tree_network_config(config, leaves),
                                   concentration=config.concentration)


def _build_mesh(config: FabricConfig):
    from repro.fabric.network import _grid_shape
    if config.flow_control == FLOW_VC:
        # VC meshes assemble on the generic fabric machinery (the
        # historical MeshNetwork stays byte-for-byte the wormhole build).
        from repro.fabric.network import CreditFabricNetwork, make_vc_policy
        from repro.fabric.routing import PORT_NAMES, XYRouting
        from repro.mesh.topology import MeshTopology
        cols, rows = _grid_shape(config, "mesh")
        return CreditFabricNetwork(
            config, MeshTopology(cols, rows), XYRouting(cols, rows),
            node_prefix="m", port_names=PORT_NAMES,
            vc_policy=make_vc_policy(config, cols, rows),
        )
    from repro.mesh.network import MeshConfig, MeshNetwork
    cols, rows = _grid_shape(config, "mesh")
    return MeshNetwork(MeshConfig(
        cols=cols, rows=rows,
        chip_width_mm=config.chip_width_mm,
        chip_height_mm=config.chip_height_mm,
        buffer_depth=config.buffer_depth,
        max_segment_mm=config.max_segment_mm,
        pipeline_depth=config.pipeline_depth,
        segment_links=config.segment_links,
        credit_sizing=config.credit_sizing,
        tech=config.tech,
        activity_driven=config.activity_driven,
        backend=config.backend,
    ))


def _build_torus(config: FabricConfig):
    from repro.fabric.network import TorusNetwork
    return TorusNetwork(config)


def _build_ring(config: FabricConfig):
    from repro.fabric.network import RingNetwork
    return RingNetwork(config)


# Physical descriptors (lazy-import like the builders, so the registry
# stays importable from anywhere without pulling in repro.physical).


def _physical_tree(network, name: str, clocking: str):
    from repro.physical.descriptor import TreePhysical
    return TreePhysical(network, name, clocking)


def _physical_ctree(network, name: str, clocking: str):
    from repro.physical.descriptor import CtreePhysical
    return CtreePhysical(network, name, clocking)


def _physical_credit(network, name: str, clocking: str):
    # One descriptor serves every credit fabric: it walks the network's
    # own routing strategy over its own link table, so mesh, torus and
    # ring (wormhole or VC) need no per-topology physical code.
    from repro.physical.descriptor import CreditFabricPhysical
    return CreditFabricPhysical(network, name, clocking)


register_topology(TopologyEntry(
    name="tree",
    description="the paper's IC-NoC: 3x3/5x5 routers, handshake links, "
                "clock rides the data tree",
    clock_distribution=(CLOCK_INTEGRATED, CLOCK_MESOCHRONOUS),
    tree_legal=True,
    builder=_build_tree,
    validate=_validate_tree,
    physical=_physical_tree,
))

register_topology(TopologyEntry(
    name="ctree",
    description="concentrated tree: several endpoints share each leaf NI, "
                "still integrated-clock legal",
    clock_distribution=(CLOCK_INTEGRATED, CLOCK_MESOCHRONOUS),
    tree_legal=True,
    builder=_build_ctree,
    validate=_validate_ctree,
    physical=_physical_ctree,
))

register_topology(TopologyEntry(
    name="mesh",
    description="2-D mesh, XY wormhole routing, credit flow control "
                "(the paper's comparison baseline)",
    clock_distribution=(CLOCK_MESOCHRONOUS,),
    tree_legal=False,
    builder=_build_mesh,
    validate=_validate_grid,
    physical=_physical_credit,
    flow_control=(FLOW_WORMHOLE, FLOW_VC),
    vc_policies=("escape",),
    allocators=("rr", "weighted", "escape-reentry"),
    supports_pipeline=True,
))

register_topology(TopologyEntry(
    name="torus",
    description="2-D torus: shortest-wrap XY routing, bubble flow control "
                "or dateline/escape VCs on the rings",
    clock_distribution=(CLOCK_MESOCHRONOUS,),
    tree_legal=False,
    builder=_build_torus,
    validate=_validate_grid,
    physical=_physical_credit,
    flow_control=(FLOW_WORMHOLE, FLOW_VC),
    vc_policies=("dateline", "escape"),
    allocators=("rr", "weighted", "escape-reentry"),
    supports_pipeline=True,
))

register_topology(TopologyEntry(
    name="ring",
    description="bidirectional ring of 3-port routers, shortest-direction "
                "routing, bubble flow control or dateline VCs",
    clock_distribution=(CLOCK_MESOCHRONOUS,),
    tree_legal=False,
    builder=_build_ring,
    validate=_validate_vc,
    physical=_physical_credit,
    flow_control=(FLOW_WORMHOLE, FLOW_VC),
    vc_policies=("dateline",),
    allocators=("rr", "weighted"),
    supports_pipeline=True,
))
