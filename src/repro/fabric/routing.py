"""Pluggable routing strategies for the fabric layer.

A routing strategy turns a topology's structure into per-node routing
functions: :meth:`RoutingStrategy.for_node` returns the ``flit -> output
port`` callable a router evaluates at its edge. The strategies here are
deliberately small — the whole point of the shared fabric layer is that a
new topology is a ~30-line routing function plus a structure description,
not a second router implementation:

* :class:`XYRouting` — dimension-order routing on a 2-D mesh (X fully
  resolved, then Y); acyclic channel dependencies, deadlock-free.
* :class:`TorusXYRouting` — dimension-order with shortest-direction
  wraparound. Wrap links close rings, so the strategy flags itself as
  needing the router's bubble rule (see below).
* :class:`RingRouting` — shortest direction around a bidirectional ring;
  also ring-closing, also bubble-ruled.
* :func:`tree_updown_route` — the paper's deterministic up*/down* tree
  routing (descend through the child covering the destination leaf, else
  go to the parent), shared by the 3x3/5x5 tree routers and the
  concentrated tree's leaf-sharing variant.

**Bubble rule.** Wormhole routing around a closed ring has a cyclic
channel-dependency graph, so a ring can deadlock when every FIFO on the
cycle fills. Strategies with ``needs_bubble`` make the
:class:`~repro.fabric.router.FabricRouter` apply localised bubble flow
control: a *head* flit may only enter a ring (from the local port or by
turning out of another dimension) while the target FIFO keeps at least
one slot free afterwards (``credits >= 2``); flits already travelling
within the same ring — identified by :meth:`RoutingStrategy.ring_transit`
— are exempt and keep the ring draining. This guarantees every ring
always retains a free slot, so some flit can always advance:
deadlock-free for packets short enough to sit in one FIFO
(``flits <= buffer_depth - 1``), the virtual cut-through condition bubble
flow control assumes.

Directions are monotone along a path (the shortest wrap direction cannot
flip mid-route, ties break toward the positive direction), so no strategy
ever produces a U-turn.

**VC-assignment policies.** Fabrics built with ``flow_control="vc"``
replace the bubble rule with virtual channels
(:mod:`repro.fabric.vc`). Which output VC a head flit may be allocated is
a pluggable policy, mirroring the routing strategies:

* :class:`DatelineVc` (torus, ring) — dateline deadlock avoidance: every
  ring's channels are split into class-0 and class-1 VCs, and a packet
  switches to class 1 after crossing the ring's dateline (the wrap
  link). The class is a purely local function of the current and
  destination coordinates (see :func:`dateline_class`), each class's
  channel-dependency subgraph is acyclic, so wormhole switching is
  deadlock-free with **no packet-length bound** — the limitation bubble
  flow control carries.
* :class:`EscapeVcAdaptive` (mesh, torus) — Duato-style minimal-adaptive
  routing: head flits may be allocated any *adaptive* VC on any
  productive (distance-reducing) output, and fall back to a
  deterministic-XY *escape* VC when every adaptive candidate is busy.
  The escape subnetwork is deadlock-free on its own (XY on the mesh;
  XY over a dateline VC pair on the torus), and once a packet enters it,
  it stays there until delivery — the classic escape-channel guarantee.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigurationError, RoutingError
from repro.noc.flit import Flit
from repro.noc.topology import RouterNode, TreeTopology, PARENT_PORT

#: Canonical port indices of the 5-port grid fabrics (mesh, torus).
LOCAL, NORTH, EAST, SOUTH, WEST = range(5)
PORT_NAMES = ("local", "north", "east", "south", "west")

#: Port indices of the 3-port ring fabric.
RING_CW, RING_CCW = 1, 2
RING_PORT_NAMES = ("local", "cw", "ccw")

#: Signature of a per-node routing function.
RouteFn = Callable[[Flit], int]


class RoutingStrategy:
    """Base class: structure-aware routing, one route function per node."""

    #: Whether routers must apply the bubble rule on ring entry.
    needs_bubble = False

    def for_node(self, node: int) -> RouteFn:
        raise NotImplementedError

    def ring_transit(self, in_port: int, out_port: int) -> bool:
        """Is ``in_port -> out_port`` a same-ring pass-through (exempt
        from the bubble rule)? Only consulted when ``needs_bubble``."""
        return False


class XYRouting(RoutingStrategy):
    """Dimension-order routing on a ``cols x rows`` mesh."""

    def __init__(self, cols: int, rows: int):
        self.cols = cols
        self.rows = rows

    def for_node(self, node: int) -> RouteFn:
        cols = self.cols
        x, y = node % cols, node // cols

        def route(flit: Flit) -> int:
            dx = flit.dest % cols
            dy = flit.dest // cols
            if dx > x:
                return EAST
            if dx < x:
                return WEST
            if dy > y:
                return SOUTH
            if dy < y:
                return NORTH
            return LOCAL

        return route


#: Same-ring pass-throughs of the 5-port grid fabrics: a flit keeps its
#: direction when it leaves through the port opposite its arrival.
_GRID_TRANSIT = frozenset({
    (WEST, EAST), (EAST, WEST), (NORTH, SOUTH), (SOUTH, NORTH),
})


class TorusXYRouting(RoutingStrategy):
    """Dimension-order routing with shortest-direction wraparound."""

    needs_bubble = True

    def __init__(self, cols: int, rows: int):
        self.cols = cols
        self.rows = rows

    def for_node(self, node: int) -> RouteFn:
        cols, rows = self.cols, self.rows
        x, y = node % cols, node // cols

        def route(flit: Flit) -> int:
            dx = (flit.dest % cols - x) % cols
            if dx:
                return EAST if dx <= cols // 2 else WEST
            dy = (flit.dest // cols - y) % rows
            if dy:
                return SOUTH if dy <= rows // 2 else NORTH
            return LOCAL

        return route

    def ring_transit(self, in_port: int, out_port: int) -> bool:
        return (in_port, out_port) in _GRID_TRANSIT


class RingRouting(RoutingStrategy):
    """Shortest direction around a bidirectional ring of ``nodes``."""

    needs_bubble = True

    def __init__(self, nodes: int):
        self.nodes = nodes

    def for_node(self, node: int) -> RouteFn:
        nodes = self.nodes

        def route(flit: Flit) -> int:
            d = (flit.dest - node) % nodes
            if d == 0:
                return LOCAL
            return RING_CW if d <= nodes // 2 else RING_CCW

        return route

    def ring_transit(self, in_port: int, out_port: int) -> bool:
        # Clockwise traffic arrives on the CCW port and leaves CW;
        # counter-clockwise the other way around.
        return ((in_port, out_port) in ((RING_CCW, RING_CW),
                                        (RING_CW, RING_CCW)))


def tree_updown_route(topology: TreeTopology, node: RouterNode,
                      name: str = "tree",
                      dest_leaf: Callable[[int], int] | None = None,
                      ) -> RouteFn:
    """The paper's deterministic up*/down* routing at one tree router.

    Descend through the child whose leaf range covers the destination,
    else exit through the parent port. ``dest_leaf`` maps a flit's
    destination address to a leaf port — identity for the plain tree, the
    endpoint-to-leaf division for the concentrated tree. Up*/down*
    routing in a tree has an acyclic channel-dependency graph, so
    wormhole switching needs no bubble rule.
    """

    def route(flit: Flit) -> int:
        dest = flit.dest if dest_leaf is None else dest_leaf(flit.dest)
        port = topology.child_port_for_leaf(node, dest)
        if port == PARENT_PORT and node.parent is None:
            raise RoutingError(
                f"{name}: destination {flit.dest} not under the root"
            )
        return port

    return route


# -- virtual-channel assignment policies ----------------------------------

#: One VC-allocation candidate: (output port, output VC).
VcCandidate = tuple[int, int]

#: Per-node candidate function: ``(in_port, in_vc, head_flit) ->
#: (preferred, fallback)``. The VC allocator requests the preferred pairs
#: while any of them is free, and falls back (escape channels) only when
#: every preferred output VC is held by another packet.
VcCandidateFn = Callable[[int, int, Flit], tuple[Sequence[VcCandidate],
                                                 Sequence[VcCandidate]]]


def dateline_class(position: int, dest: int, increasing: bool) -> int:
    """The dateline VC class of the *next* link along a ring.

    The dateline sits on the ring's wrap link (index ``N-1 -> 0`` for the
    increasing direction, ``0 -> N-1`` for the decreasing one). A packet
    that still has to cross the wrap travels on class 0 — the wrap link
    itself is its last class-0 hop — and switches to class 1 after
    crossing; "still has to cross" is a purely local comparison: moving
    in the increasing direction, the remaining path wraps iff
    ``position > dest``. Class-0 channels therefore exclude the first
    post-wrap link and class-1 channels exclude the wrap link itself,
    so both subgraphs are acyclic chains:
    deadlock-free wormhole routing with no packet-length bound, even when
    (minimal-adaptive) routing interleaves ring traversals.
    """
    if increasing:
        return 0 if position > dest else 1
    return 0 if position < dest else 1


class VcPolicy:
    """Base class: per-node VC-assignment candidate functions.

    ``min_vcs`` is the smallest VC count the policy is correct with;
    constructors validate ``n_vcs`` against it. ``injection_vc`` is the
    VC sources inject on (the local input port is not part of any ring,
    so class restrictions never apply there).
    """

    name = "?"
    min_vcs = 2

    def __init__(self, n_vcs: int):
        if n_vcs < self.min_vcs:
            raise ConfigurationError(
                f"{self.name} VC policy needs >= {self.min_vcs} virtual "
                f"channels, got {n_vcs}"
            )
        self.n_vcs = n_vcs

    def for_node(self, node: int) -> VcCandidateFn:
        raise NotImplementedError

    def injection_vc(self, node: int) -> int:
        return 0

    @staticmethod
    def _ejection(n_vcs: int) -> tuple[list[VcCandidate], list[VcCandidate]]:
        """At the destination, any VC on the local port delivers."""
        return [(LOCAL, vc) for vc in range(n_vcs)], []


class DatelineVc(VcPolicy):
    """Dateline VC assignment over a deterministic ring-closing route.

    The route function (torus shortest-wrap XY, ring shortest-direction)
    stays deterministic; the policy only picks the VC class for each hop
    via :func:`dateline_class`. ``n_vcs`` must be even: the lower half of
    the VCs carries class 0, the upper half class 1 (with the default
    ``n_vcs=2``, one VC per class).
    """

    name = "dateline"

    def __init__(self, routing: RoutingStrategy, n_vcs: int):
        super().__init__(n_vcs)
        if n_vcs % 2:
            raise ConfigurationError(
                f"dateline VC classes need an even VC count, got {n_vcs}"
            )
        self.routing = routing
        self._half = n_vcs // 2

    def class_vcs(self, vc_class: int) -> list[int]:
        base = vc_class * self._half
        return list(range(base, base + self._half))

    def _link_class(self, node: int, out_port: int, flit: Flit) -> int:
        raise NotImplementedError

    def for_node(self, node: int) -> VcCandidateFn:
        route = self.routing.for_node(node)

        def candidates(in_port: int, in_vc: int, flit: Flit):
            out_port = route(flit)
            if out_port == LOCAL:
                return self._ejection(self.n_vcs)
            vc_class = self._link_class(node, out_port, flit)
            return [(out_port, vc) for vc in self.class_vcs(vc_class)], []

        return candidates


class TorusDatelineVc(DatelineVc):
    """Dateline classes for the torus: one dateline per row and column."""

    def __init__(self, cols: int, rows: int, n_vcs: int,
                 routing: RoutingStrategy | None = None):
        super().__init__(routing or TorusXYRouting(cols, rows), n_vcs)
        self.cols = cols
        self.rows = rows

    def _link_class(self, node: int, out_port: int, flit: Flit) -> int:
        x, y = node % self.cols, node // self.cols
        dx, dy = flit.dest % self.cols, flit.dest // self.cols
        if out_port == EAST:
            return dateline_class(x, dx, increasing=True)
        if out_port == WEST:
            return dateline_class(x, dx, increasing=False)
        if out_port == SOUTH:
            return dateline_class(y, dy, increasing=True)
        return dateline_class(y, dy, increasing=False)


class RingDatelineVc(DatelineVc):
    """Dateline classes for the bidirectional ring."""

    def __init__(self, nodes: int, n_vcs: int):
        super().__init__(RingRouting(nodes), n_vcs)
        self.nodes = nodes

    def _link_class(self, node: int, out_port: int, flit: Flit) -> int:
        return dateline_class(node, flit.dest,
                              increasing=(out_port == RING_CW))


class EscapeVcAdaptive(VcPolicy):
    """Minimal-adaptive routing over free VCs with a deterministic escape.

    Head flits may be allocated any *adaptive* VC on any productive
    output port (every port that reduces the remaining distance — the
    source of the adaptivity). When every adaptive candidate VC is held,
    the flit falls back to the *escape* VC on the deterministic XY
    output. The escape subnetwork is deadlock-free on its own:

    * mesh (``wrap=False``) — VC 0 under XY routing (acyclic turns);
    * torus (``wrap=True``) — VCs 0 and 1 under shortest-wrap XY with
      dateline classes (so ``n_vcs >= 3`` leaves at least one adaptive
      VC).

    By default a packet that enters the escape stays on it until
    delivery, so escape channels never depend on adaptive ones —
    Duato's (basic) condition for deadlock freedom of the adaptive
    whole. ``reentry=True`` relaxes this to Duato's *extended*
    condition: a packet on an escape VC may request adaptive VCs again
    at later hops, because legality only needs the escape subfunction
    to stay a connected, deadlock-free routing subfunction that every
    packet can fall back to at every hop — which it does regardless of
    how often packets leave and re-enter it. The knob rides on the
    allocator (:class:`~repro.fabric.allocator.EscapeReentryAllocator`
    sets ``wants_reentry``); the assembling network threads it here.

    ``priority_flows`` reserves the top VC as a priority lane for the
    named ``(src, dest)`` flows: their heads prefer the top VC along
    the deterministic XY output (falling back to escape like everyone
    else — including *re-entering* the lane from escape at later hops,
    legal by the same extended-Duato argument), and no other traffic
    ever requests that VC, so a
    :class:`~repro.fabric.allocator.WeightedAllocator` reservation on
    it meters exactly the priority flows' bandwidth. The lane itself is
    deadlock-free standalone (one VC class over acyclic XY turns),
    which is why it is mesh-only: on the wrapped torus a single VC
    along a ring is cyclic, so ``wrap=True`` with priority flows is a
    configuration error.
    """

    name = "escape"

    def __init__(self, cols: int, rows: int, n_vcs: int, wrap: bool,
                 reentry: bool = False,
                 priority_flows: Sequence[tuple[int, int]] = ()):
        self.wrap = wrap
        self.reentry = reentry
        self.priority_flows = frozenset(
            (int(src), int(dest)) for src, dest in priority_flows
        )
        if self.priority_flows and wrap:
            raise ConfigurationError(
                "priority flows need an acyclic priority lane: the "
                "escape policy only reserves one on the mesh (wrap-free "
                "XY); use the mesh topology or drop priority_flows"
            )
        # Escape class(es), at least one adaptive VC, plus the reserved
        # priority lane when flows are named.
        self.min_vcs = (3 if wrap else 2) + (1 if self.priority_flows else 0)
        super().__init__(n_vcs)
        self.cols = cols
        self.rows = rows
        self.escape_vcs = (0, 1) if wrap else (0,)
        self.priority_vc = n_vcs - 1 if self.priority_flows else None
        top = n_vcs - (1 if self.priority_flows else 0)
        self.adaptive_vcs = tuple(range(len(self.escape_vcs), top))
        self._xy = (TorusXYRouting(cols, rows) if wrap
                    else XYRouting(cols, rows))
        self._dateline = (TorusDatelineVc(cols, rows, 2) if wrap else None)

    def _productive_ports(self, node: int, dest: int) -> list[int]:
        """Output ports that reduce the remaining distance (minimal)."""
        cols, rows = self.cols, self.rows
        x, y = node % cols, node // cols
        dx, dy = dest % cols, dest // cols
        ports: list[int] = []
        if self.wrap:
            ex = (dx - x) % cols
            if ex:
                if ex <= cols - ex:
                    ports.append(EAST)
                if cols - ex <= ex:
                    ports.append(WEST)
            ey = (dy - y) % rows
            if ey:
                if ey <= rows - ey:
                    ports.append(SOUTH)
                if rows - ey <= ey:
                    ports.append(NORTH)
        else:
            if dx > x:
                ports.append(EAST)
            elif dx < x:
                ports.append(WEST)
            if dy > y:
                ports.append(SOUTH)
            elif dy < y:
                ports.append(NORTH)
        return ports

    def _escape_candidate(self, node: int, flit: Flit,
                          out_port: int) -> VcCandidate:
        if self._dateline is None:
            return (out_port, 0)
        return (out_port, self._dateline._link_class(node, out_port, flit))

    def for_node(self, node: int) -> VcCandidateFn:
        route = self._xy.for_node(node)

        def candidates(in_port: int, in_vc: int, flit: Flit):
            xy_port = route(flit)
            if xy_port == LOCAL:
                if self.priority_vc is None:
                    return self._ejection(self.n_vcs)
                # The lane stays exclusive end-to-end — ejection
                # included — so a weighted reservation on it meters
                # only the priority flows. Background ejects on the
                # other VCs; priority flows prefer the lane and fall
                # back to the shared VCs.
                shared = [(LOCAL, vc) for vc in range(self.priority_vc)]
                if (flit.src, flit.dest) in self.priority_flows:
                    return [(LOCAL, self.priority_vc)], shared
                return shared, []
            escape = [self._escape_candidate(node, flit, xy_port)]
            if (self.priority_vc is not None
                    and (flit.src, flit.dest) in self.priority_flows):
                # Priority flows prefer their reserved lane at every
                # hop — including hops reached on an escape VC (lane
                # re-entry is extended-Duato legal; see class docs).
                return [(xy_port, self.priority_vc)], escape
            if (in_port != LOCAL and in_vc in self.escape_vcs
                    and not self.reentry):
                # Committed to the escape subnetwork: deterministic XY
                # until delivery (what makes escape self-sufficient
                # under the basic Duato condition).
                return [], escape
            adaptive = [(port, vc)
                        for port in self._productive_ports(node, flit.dest)
                        for vc in self.adaptive_vcs]
            return adaptive, escape

        return candidates
