"""Pluggable routing strategies for the fabric layer.

A routing strategy turns a topology's structure into per-node routing
functions: :meth:`RoutingStrategy.for_node` returns the ``flit -> output
port`` callable a router evaluates at its edge. The strategies here are
deliberately small — the whole point of the shared fabric layer is that a
new topology is a ~30-line routing function plus a structure description,
not a second router implementation:

* :class:`XYRouting` — dimension-order routing on a 2-D mesh (X fully
  resolved, then Y); acyclic channel dependencies, deadlock-free.
* :class:`TorusXYRouting` — dimension-order with shortest-direction
  wraparound. Wrap links close rings, so the strategy flags itself as
  needing the router's bubble rule (see below).
* :class:`RingRouting` — shortest direction around a bidirectional ring;
  also ring-closing, also bubble-ruled.
* :func:`tree_updown_route` — the paper's deterministic up*/down* tree
  routing (descend through the child covering the destination leaf, else
  go to the parent), shared by the 3x3/5x5 tree routers and the
  concentrated tree's leaf-sharing variant.

**Bubble rule.** Wormhole routing around a closed ring has a cyclic
channel-dependency graph, so a ring can deadlock when every FIFO on the
cycle fills. Strategies with ``needs_bubble`` make the
:class:`~repro.fabric.router.FabricRouter` apply localised bubble flow
control: a *head* flit may only enter a ring (from the local port or by
turning out of another dimension) while the target FIFO keeps at least
one slot free afterwards (``credits >= 2``); flits already travelling
within the same ring — identified by :meth:`RoutingStrategy.ring_transit`
— are exempt and keep the ring draining. This guarantees every ring
always retains a free slot, so some flit can always advance:
deadlock-free for packets short enough to sit in one FIFO
(``flits <= buffer_depth - 1``), the virtual cut-through condition bubble
flow control assumes.

Directions are monotone along a path (the shortest wrap direction cannot
flip mid-route, ties break toward the positive direction), so no strategy
ever produces a U-turn.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import RoutingError
from repro.noc.flit import Flit
from repro.noc.topology import RouterNode, TreeTopology, PARENT_PORT

#: Canonical port indices of the 5-port grid fabrics (mesh, torus).
LOCAL, NORTH, EAST, SOUTH, WEST = range(5)
PORT_NAMES = ("local", "north", "east", "south", "west")

#: Port indices of the 3-port ring fabric.
RING_CW, RING_CCW = 1, 2
RING_PORT_NAMES = ("local", "cw", "ccw")

#: Signature of a per-node routing function.
RouteFn = Callable[[Flit], int]


class RoutingStrategy:
    """Base class: structure-aware routing, one route function per node."""

    #: Whether routers must apply the bubble rule on ring entry.
    needs_bubble = False

    def for_node(self, node: int) -> RouteFn:
        raise NotImplementedError

    def ring_transit(self, in_port: int, out_port: int) -> bool:
        """Is ``in_port -> out_port`` a same-ring pass-through (exempt
        from the bubble rule)? Only consulted when ``needs_bubble``."""
        return False


class XYRouting(RoutingStrategy):
    """Dimension-order routing on a ``cols x rows`` mesh."""

    def __init__(self, cols: int, rows: int):
        self.cols = cols
        self.rows = rows

    def for_node(self, node: int) -> RouteFn:
        cols = self.cols
        x, y = node % cols, node // cols

        def route(flit: Flit) -> int:
            dx = flit.dest % cols
            dy = flit.dest // cols
            if dx > x:
                return EAST
            if dx < x:
                return WEST
            if dy > y:
                return SOUTH
            if dy < y:
                return NORTH
            return LOCAL

        return route


#: Same-ring pass-throughs of the 5-port grid fabrics: a flit keeps its
#: direction when it leaves through the port opposite its arrival.
_GRID_TRANSIT = frozenset({
    (WEST, EAST), (EAST, WEST), (NORTH, SOUTH), (SOUTH, NORTH),
})


class TorusXYRouting(RoutingStrategy):
    """Dimension-order routing with shortest-direction wraparound."""

    needs_bubble = True

    def __init__(self, cols: int, rows: int):
        self.cols = cols
        self.rows = rows

    def for_node(self, node: int) -> RouteFn:
        cols, rows = self.cols, self.rows
        x, y = node % cols, node // cols

        def route(flit: Flit) -> int:
            dx = (flit.dest % cols - x) % cols
            if dx:
                return EAST if dx <= cols // 2 else WEST
            dy = (flit.dest // cols - y) % rows
            if dy:
                return SOUTH if dy <= rows // 2 else NORTH
            return LOCAL

        return route

    def ring_transit(self, in_port: int, out_port: int) -> bool:
        return (in_port, out_port) in _GRID_TRANSIT


class RingRouting(RoutingStrategy):
    """Shortest direction around a bidirectional ring of ``nodes``."""

    needs_bubble = True

    def __init__(self, nodes: int):
        self.nodes = nodes

    def for_node(self, node: int) -> RouteFn:
        nodes = self.nodes

        def route(flit: Flit) -> int:
            d = (flit.dest - node) % nodes
            if d == 0:
                return LOCAL
            return RING_CW if d <= nodes // 2 else RING_CCW

        return route

    def ring_transit(self, in_port: int, out_port: int) -> bool:
        # Clockwise traffic arrives on the CCW port and leaves CW;
        # counter-clockwise the other way around.
        return ((in_port, out_port) in ((RING_CCW, RING_CW),
                                        (RING_CW, RING_CCW)))


def tree_updown_route(topology: TreeTopology, node: RouterNode,
                      name: str = "tree",
                      dest_leaf: Callable[[int], int] | None = None,
                      ) -> RouteFn:
    """The paper's deterministic up*/down* routing at one tree router.

    Descend through the child whose leaf range covers the destination,
    else exit through the parent port. ``dest_leaf`` maps a flit's
    destination address to a leaf port — identity for the plain tree, the
    endpoint-to-leaf division for the concentrated tree. Up*/down*
    routing in a tree has an acyclic channel-dependency graph, so
    wormhole switching needs no bubble rule.
    """

    def route(flit: Flit) -> int:
        dest = flit.dest if dest_leaf is None else dest_leaf(flit.dest)
        port = topology.child_port_for_leaf(node, dest)
        if port == PARENT_PORT and node.parent is None:
            raise RoutingError(
                f"{name}: destination {flit.dest} not under the root"
            )
        return port

    return route
