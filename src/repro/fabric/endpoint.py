"""Shared endpoint adapters for credit-based fabrics.

Every synchronous fabric attaches hosts the same way: a
:class:`FabricSource` injecting packets (as flits, under credits) into a
router's local input port, and a :class:`FabricSink` draining the local
output port, returning credits, and reassembling packets. Both adapters
serve every VC count — a source injects on its policy-assigned
``vc`` (0 on single-VC fabrics), a sink returns credits on whatever VC
each flit arrives on — and both implement the idle-component sleep
contract once, for every topology in the registry: a quiet endpoint is a
fixed point the activity-driven kernel skips, and the sink emits the
standard ``"flit"`` / ``"packet"`` kernel events congestion diagnosis
subscribes to.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.fabric.link import CreditLink
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel


class FabricSource(ClockedComponent):
    """Injects flits into a router's local input port under credits."""

    def __init__(self, kernel: SimKernel, name: str, link: CreditLink,
                 credits: int, vc: int = 0, register: bool = True):
        super().__init__(name, parity=0)
        self.link = link
        self.vc = vc
        self.credits = credits
        self.flits: deque[Flit] = deque()
        self.packets: deque[Packet] = deque()
        # register=False leaves the endpoint unscheduled (the array
        # backend executes its semantics instead); state is identical.
        if register:
            kernel.add_component(self)

    def submit(self, packet: Packet) -> None:
        self.packets.append(packet)
        self.wake()

    @property
    def idle(self) -> bool:
        return not self.flits and not self.packets

    def on_edge(self, tick: int) -> None:
        active = False
        if returned := self.link.take_credits(self.vc, tick):
            self.credits += returned
            active = True
        if not self.flits and self.packets:
            packet = self.packets.popleft()
            packet.inject_tick = tick
            self.flits.extend(packet.to_flits())
        if self.flits and self.credits > 0:
            self.link.send_flit(self.flits.popleft(), self.vc, tick)
            self.credits -= 1
        elif not active:
            # Nothing sendable (empty, or out of credits) and no credit
            # arrived: wait for a credit return or the next submit().
            self.sleep_until(self.link.credits[self.vc])


class FabricSink(ClockedComponent):
    """Drains a router's local output port, returning credits per VC."""

    def __init__(self, kernel: SimKernel, name: str, link: CreditLink,
                 on_packet: Callable[[Packet, int], None],
                 register: bool = True):
        super().__init__(name, parity=0)
        self.link = link
        self.on_packet = on_packet
        self._assembly: dict[int, list[Flit]] = {}
        self.flits_received = 0
        if register:
            kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        tagged = self.link.take_flit(tick)
        credit_vc = -1
        if tagged is not None:
            flit, vc = tagged
            credit_vc = vc
            self.flits_received += 1
            self._kernel.emit("flit", flit)
            buffer = self._assembly.setdefault(flit.packet_id, [])
            buffer.append(flit)
            if flit.is_tail:
                del self._assembly[flit.packet_id]
                packet = Packet.from_flits(buffer)
                packet.eject_tick = tick
                self.on_packet(packet, tick)
                self._kernel.emit("packet", packet)
        # Write-on-change credit returns (cf. FabricRouter): one credit
        # on the arriving flit's VC, settle the rest once.
        settled = False
        for vc in range(self.link.n_vcs):
            if vc == credit_vc:
                self.link.send_credits(vc, 1, tick)
            elif self.link.settle_credit(vc, tick):
                settled = True
        if credit_vc < 0 and not settled:
            # No arrival and no wire to settle: wait for the next flit.
            self.sleep_until(self.link.flit)
