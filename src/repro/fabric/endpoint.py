"""Shared endpoint adapters for credit-based fabrics.

Every synchronous fabric attaches hosts the same way: a
:class:`FabricSource` injecting packets (as flits, under credits) into a
router's local input port, and a :class:`FabricSink` draining the local
output port, returning credits, and reassembling packets. Both implement
the idle-component sleep contract once, for every topology in the
registry — a quiet endpoint is a fixed point the activity-driven kernel
skips, and the sink emits the standard ``"flit"`` / ``"packet"`` kernel
events congestion diagnosis subscribes to.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.fabric.link import CreditLink
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel


class FabricSource(ClockedComponent):
    """Injects flits into a router's local input port under credits."""

    def __init__(self, kernel: SimKernel, name: str, link: CreditLink,
                 credits: int, register: bool = True):
        super().__init__(name, parity=0)
        self.link = link
        self.credits = credits
        self.flits: deque[Flit] = deque()
        self.packets: deque[Packet] = deque()
        # register=False leaves the endpoint unscheduled (the array
        # backend executes its semantics instead); state is identical.
        if register:
            kernel.add_component(self)

    def submit(self, packet: Packet) -> None:
        self.packets.append(packet)
        self.wake()

    @property
    def idle(self) -> bool:
        return not self.flits and not self.packets

    def on_edge(self, tick: int) -> None:
        active = False
        if returned := self.link.take_credits(tick):
            self.credits += returned
            active = True
        if not self.flits and self.packets:
            packet = self.packets.popleft()
            packet.inject_tick = tick
            self.flits.extend(packet.to_flits())
        if self.flits and self.credits > 0:
            self.link.send_flit(self.flits.popleft(), tick)
            self.credits -= 1
        elif not active:
            # Nothing sendable (empty, or out of credits) and no credit
            # arrived: wait for a credit return or the next submit().
            self.sleep_until(self.link.credit)


class FabricSink(ClockedComponent):
    """Drains a router's local output port, returning credits."""

    def __init__(self, kernel: SimKernel, name: str, link: CreditLink,
                 on_packet: Callable[[Packet, int], None],
                 register: bool = True):
        super().__init__(name, parity=0)
        self.link = link
        self.on_packet = on_packet
        self._assembly: dict[int, list[Flit]] = {}
        self.flits_received = 0
        if register:
            kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        flit = self.link.take_flit(tick)
        credit = 0
        if flit is not None:
            self.flits_received += 1
            credit = 1
            self._kernel.emit("flit", flit)
            buffer = self._assembly.setdefault(flit.packet_id, [])
            buffer.append(flit)
            if flit.is_tail:
                del self._assembly[flit.packet_id]
                packet = Packet.from_flits(buffer)
                packet.eject_tick = tick
                self.on_packet(packet, tick)
                self._kernel.emit("packet", packet)
        # Write-on-change credit return (cf. FabricRouter): zero the wire
        # once after a return, then stop driving it.
        if credit:
            self.link.send_credits(credit, tick)
        elif not self.link.settle_credit(tick):
            # No arrival and no wire to settle: wait for the next flit.
            self.sleep_until(self.link.flit)
