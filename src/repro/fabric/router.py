"""The shared credit-based fabric router.

One router implementation serves every synchronously clocked fabric (mesh,
torus, ring, and whatever the registry grows next), across both
flow-control regimes: an N-port credit router with input FIFOs, wormhole
locks, and a pluggable two-stage :class:`~repro.fabric.allocator.Allocator`
(VC allocation + switch allocation). ``n_vcs=1`` is the wormhole
degenerate case — bit-identical to every build before virtual channels
existed: one FIFO per port, no VC-allocation stage, the allocator's
per-output switch arbiters are exactly the historical round-robin
arbiters, and state keeps the historical flat layout (``fifos[port]``,
``credits[port]``, ``locks[port]``). ``n_vcs=V >= 2`` runs the
virtual-channel regime: per-(port, VC) FIFOs, per-VC credit counters and
wormhole locks, and policy-driven VC allocation ahead of switch
allocation. What differs between fabrics — where the ports lead and which
output (and VCs) a flit wants — lives in the
:mod:`~repro.fabric.routing` strategy supplied at construction.

Single-edge clocking (all routers share parity 0 in the kernel: one firing
per clock cycle). Each input FIFO holds ``buffer_depth`` flits — the
stall buffers the IC-NoC architecture avoids. A router may only forward a
flit toward a neighbour when it holds a credit for that neighbour's input
FIFO; the neighbour returns a credit when it dequeues. Per-port FIFO
depths follow the attached link's ``capacity`` when the assembling
network sized one (segmented links and pipelined routers need
``pipeline_depth + 2 * segments`` credits to stream — see docs/fabric.md).

**Pipelined router.** ``pipeline_depth=1`` (the default) is the
historical single-cycle router: route, arbitrate, and traverse all happen
on the grant edge, bit-identically to every build before the knob
existed. ``pipeline_depth=N`` models an RC/VA/SA/ST-style staged
microarchitecture at cycle accuracy: arbitration, credit accounting, and
wormhole-lock updates still happen on the grant edge (stage one — the
decision), but the flit spends ``N - 1`` further cycles in stage
registers before the link sees it. In-flight stage state keeps the
router awake (the idle/sleep contract extends to the stage registers:
a router never sleeps with a flit between grant and link). The payoff is
clock frequency, priced in :mod:`repro.timing.frequency` — each of the N
stages covers ``1/N`` of the router logic plus one register overhead.

Routers honour the idle-component contract (docs/kernel.md): signals are
driven write-on-change (a credit wire is zeroed once after a return, then
left alone), so an edge that receives nothing, forwards nothing, and has
nothing buffered is a fixed point — the router sleeps watching its input
flit wires and output credit wires, and fabric-heavy sweeps benefit from
the kernel's activity-driven fast path. Skipped edges are backfilled into
the gating statistics via the shared
:class:`~repro.sim.component.GatedComponentMixin`.

**Bubble rule.** When the routing strategy flags ``needs_bubble`` (ring-
closing topologies: torus, ring) and the router runs single-VC, a head
flit may only *enter* a ring — from the local port or by turning out of
another dimension — while the target FIFO keeps a free slot afterwards
(``credits >= 2``); same-ring transit is exempt. See
:mod:`repro.fabric.routing` for the argument. The VC regime replaces the
bubble rule (and its packet-length bound) with dateline/escape policies.

**Kernel events.** With any :meth:`~repro.sim.kernel.SimKernel.subscribe`
listener attached, the router emits congestion-diagnosis events (cheap
no-ops otherwise, so the fast path never pays for unobserved visibility):

* ``"arbitration_grant"`` — an output port granted an input; data is a
  dict with ``router``, ``output``, ``vc``, ``input``, ``input_vc``, and
  the ``flit``. Single-VC routers emit ``vc=0``/``input_vc=0``.
* ``"credit_exhausted"`` — a flit wants an output (VC) whose credits just
  ran dry. Edge-triggered on *entering* starvation (cleared when credits
  return), so both kernel modes emit the identical event sequence even
  though the naive loop re-fires starved routers every cycle.
* ``"lock_acquire"`` / ``"lock_release"`` — a multi-flit packet's head
  took an output('s VC) wormhole lock / its tail released it; data
  carries ``router``, ``output``, ``vc``, ``input``, ``input_vc``, and
  the ``packet_id``. Single-flit packets never hold the lock, so they
  emit neither. Acquisitions and releases are discrete state
  transitions, hence edge-triggered and mode-identical by construction.
* ``"vc_allocated"`` (VC regime only) — the allocator granted an output
  VC to a head flit; data carries ``router``, ``output``, ``vc``,
  ``input``, ``input_vc``, and the ``flit``.

The ``output``/``input`` fields are port *indices*; consumers label
them via :meth:`FabricRouter.port_name`. These payloads are a stable
contract: the :mod:`repro.telemetry` metrics registry and flit tracer
key grant counts, stall episodes, and hop records off them (always
VC-suffixed, ``:vc0`` for single-VC), and the telemetry equivalence
suite pins the emitted sequences across both kernel modes on every
registered topology.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.clocking.gating import GatingStats
from repro.errors import ConfigurationError, RoutingError
from repro.fabric.allocator import Allocator, RoundRobinAllocator
from repro.fabric.link import CreditLink
from repro.fabric.routing import RouteFn, RoutingStrategy, VcCandidateFn
from repro.noc.flit import Flit
from repro.sim.component import ClockedComponent, GatedComponentMixin
from repro.sim.kernel import SimKernel
from repro.sim.signal import Signal


class FabricRouter(GatedComponentMixin, ClockedComponent):
    """N-port credit router, wormhole at ``n_vcs=1``, VCs above.

    Single-VC routers take a ``route`` function (flit -> output port);
    multi-VC routers take a ``candidates`` function (the
    :class:`~repro.fabric.routing.VcPolicy` product: input port, input
    VC, head flit -> preferred/(escape) ``(out_port, out_vc)`` lists).
    Who wins contended outputs is the ``allocator``'s business
    (:mod:`repro.fabric.allocator`); the default round-robin reproduces
    the historical arbitration bit-identically in both regimes.
    """

    def __init__(self, kernel: SimKernel, name: str, n_ports: int,
                 route: RouteFn | None = None, buffer_depth: int = 4,
                 ring_transit: RoutingStrategy | None = None,
                 port_names: Sequence[str] | None = None,
                 pipeline_depth: int = 1, register: bool = True,
                 n_vcs: int = 1,
                 candidates: VcCandidateFn | None = None,
                 allocator: Allocator | None = None):
        super().__init__(name, parity=0)
        if n_ports < 2:
            raise ConfigurationError("a router needs at least 2 ports")
        if n_vcs < 1:
            raise ConfigurationError("a router needs >= 1 VC")
        if buffer_depth < 2:
            raise ConfigurationError("credit flow control needs depth >= 2")
        if pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        if n_vcs == 1 and route is None:
            raise ConfigurationError(
                "a single-VC router needs a route function"
            )
        if n_vcs >= 2 and candidates is None:
            raise ConfigurationError(
                "a VC router needs a candidates function (VC policy)"
            )
        self.n_ports = n_ports
        self.n_vcs = n_vcs
        self.buffer_depth = buffer_depth
        self.pipeline_depth = pipeline_depth
        # Flits between grant and link traversal, as (ready_tick,
        # out_port, out_vc, flit). Grants are issued in tick order with a
        # constant stage delay, so ready ticks are monotone and one queue
        # suffices.
        self._stage_queue: deque[tuple[int, int, int, Flit]] = deque()
        self._route_fn = route
        self._candidates = candidates
        # Bubble flow control (single-VC only): the strategy deciding
        # which in->out pairs are same-ring transit; None disables the
        # rule (acyclic fabrics, and every VC regime — dateline/escape
        # policies replace it).
        self._ring_transit = (ring_transit
                              if n_vcs == 1 and ring_transit is not None
                              and ring_transit.needs_bubble else None)
        self._port_names = port_names
        # in_links[p]: flits arriving on port p; out_links[p]: flits leaving.
        self.in_links: list[CreditLink | None] = [None] * n_ports
        self.out_links: list[CreditLink | None] = [None] * n_ports
        # Per-port FIFO depth (shared by a port's VCs): buffer_depth
        # unless the attached link was sized for a longer credit loop
        # (see connect()).
        self.fifo_depths = [buffer_depth] * n_ports
        self.allocator = (allocator if allocator is not None
                          else RoundRobinAllocator())
        self.allocator.bind(n_ports, n_vcs)
        if n_vcs == 1:
            # The historical wormhole state layout, flat per port.
            self.fifos: list[deque[Flit]] = [deque()
                                             for _ in range(n_ports)]
            self.credits: list[int] = [0] * n_ports
            self.locks: list[int | None] = [None] * n_ports
            self._starved: list[bool] = [False] * n_ports
            # Switch requests all target "VC 0" of the output.
            self._zero_vc_of = [0] * n_ports
        else:
            # Indexed [port][vc]; flattened index = port * n_vcs + vc.
            self.fifos = [[deque() for _ in range(n_vcs)]
                          for _ in range(n_ports)]
            self.credits = [[0] * n_vcs for _ in range(n_ports)]
            #: Which input VC owns each output VC (per-VC wormhole lock).
            self.vc_owner: list[list[tuple[int, int] | None]] = [
                [None] * n_vcs for _ in range(n_ports)
            ]
            #: The (out_port, out_vc) each input VC's packet was allocated.
            self.allocation: list[list[tuple[int, int] | None]] = [
                [None] * n_vcs for _ in range(n_ports)
            ]
            self._starved = [[False] * n_vcs for _ in range(n_ports)]
        self._gating = GatingStats()
        self.flits_forwarded = 0
        self.vcs_allocated = 0
        # Signals to watch while asleep: anything arriving (flits in,
        # credits back) makes the next edge act again.
        self._watch: list[Signal] = []
        # register=False leaves the router unscheduled (an array backend
        # executes its semantics instead); state and wiring are identical.
        if register:
            kernel.add_component(self)

    # The allocator owns arbitration state; these views keep the
    # historical introspection spellings working in both regimes.

    @property
    def arbiters(self):
        """Per-output switch arbiters (historical wormhole name)."""
        return self.allocator.sa_arbiters

    @property
    def sa_arbiters(self):
        """Per-output switch arbiters (VC-regime name)."""
        return self.allocator.sa_arbiters

    @property
    def va_arbiters(self):
        """VC-allocation arbiters, keyed by ``(out_port, out_vc)``."""
        return self.allocator.va_arbiters

    def port_name(self, port: int) -> str:
        if self._port_names is not None and port < len(self._port_names):
            return self._port_names[port]
        return f"port{port}"

    def connect(self, port: int, in_link: CreditLink | None,
                out_link: CreditLink | None) -> None:
        self.in_links[port] = in_link
        self.out_links[port] = out_link
        if in_link is not None and in_link.capacity is not None:
            self.fifo_depths[port] = in_link.capacity
        if out_link is not None:
            # Initial credits mirror the consumer's FIFO depth — the link
            # carries the agreed capacity so the two cannot disagree.
            per_vc = (out_link.capacity if out_link.capacity is not None
                      else self.buffer_depth)
            if self.n_vcs == 1:
                self.credits[port] = per_vc
            else:
                self.credits[port] = [per_vc] * self.n_vcs
        self._watch = [link.flit for link in self.in_links
                       if link is not None]
        for link in self.out_links:
            if link is not None:
                self._watch += link.credits

    def _route(self, flit: Flit) -> int:
        return self._route_fn(flit)

    def _bubble_blocks(self, in_port: int, out_port: int) -> bool:
        """Would forwarding a head flit in->out violate the bubble rule?"""
        return (self._ring_transit is not None
                and not self._ring_transit.ring_transit(in_port, out_port)
                and self.credits[out_port] < 2)

    def on_edge(self, tick: int) -> None:
        if self.n_vcs == 1:
            self._edge_single(tick)
        else:
            self._edge_vc(tick)

    # -- the single-VC (wormhole) edge -----------------------------------

    def _edge_single(self, tick: int) -> None:
        enabled = False   # register-bank activity (gating statistics)
        active = False    # anything at all happened (sleep decision)
        observed = bool(self._kernel._event_subs)
        # 0. Drain the router pipeline: flits granted pipeline_depth - 1
        # cycles ago finish stage traversal and hit the link this edge.
        if self._stage_queue:
            while self._stage_queue and self._stage_queue[0][0] <= tick:
                _ready, st_port, _st_vc, st_flit = \
                    self._stage_queue.popleft()
                self.out_links[st_port].send_flit(st_flit, 0, tick)
                enabled = True
            if self._stage_queue:
                active = True  # in-flight stage state: never sleep on it
        # 1. Collect credit returns (tick-tagged: consumed exactly once).
        for port, link in enumerate(self.out_links):
            if link is None:
                continue
            if returned := link.take_credits(0, tick):
                self.credits[port] += returned
                active = True
                if self._starved[port]:
                    # Starvation ends exactly when credits return — clear
                    # the event latch unconditionally so a later observer
                    # sees the next starvation episode.
                    self._starved[port] = False
        # 2. Forward: per output, arbitrate among input FIFO heads. Runs
        # before arrivals are enqueued, so a flit spends at least one full
        # cycle in the router (head latency 2 cycles/hop incl. the wire).
        credits_returned = [0] * self.n_ports
        for out_port in range(self.n_ports):
            out_link = self.out_links[out_port]
            if out_link is None:
                continue
            if self.credits[out_port] <= 0:
                if observed:
                    self._note_starvation_single(out_port, tick)
                continue
            lock = self.locks[out_port]
            requests = []
            for in_port in range(self.n_ports):
                fifo = self.fifos[in_port]
                if not fifo:
                    requests.append(False)
                    continue
                head = fifo[0]
                if self._route(head) != out_port:
                    requests.append(False)
                    continue
                if lock is not None:
                    requests.append(in_port == lock)
                else:
                    requests.append(head.is_head and not self._bubble_blocks(
                        in_port, out_port))
            if not any(requests):
                continue
            winner = self.allocator.switch_winner(out_port, requests,
                                                  self._zero_vc_of)
            flit = self.fifos[winner].popleft()
            credits_returned[winner] += 1
            if self.pipeline_depth == 1:
                out_link.send_flit(flit, 0, tick)
            else:
                # Grant now (credits, locks, arbiter state — the decision
                # stage), traverse after the remaining stage registers.
                self._stage_queue.append(
                    (tick + 2 * (self.pipeline_depth - 1), out_port, 0,
                     flit)
                )
            self.credits[out_port] -= 1
            self.flits_forwarded += 1
            enabled = True
            if observed:
                self._kernel.emit("arbitration_grant", {
                    "router": self.name, "output": out_port, "vc": 0,
                    "input": winner, "input_vc": 0, "flit": flit,
                })
            if flit.is_tail:
                self.locks[out_port] = None
                if observed and not flit.is_head:
                    self._kernel.emit("lock_release", {
                        "router": self.name, "output": out_port, "vc": 0,
                        "input": winner, "input_vc": 0,
                        "packet_id": flit.packet_id,
                    })
            elif flit.is_head:
                self.locks[out_port] = winner
                if observed:
                    self._kernel.emit("lock_acquire", {
                        "router": self.name, "output": out_port, "vc": 0,
                        "input": winner, "input_vc": 0,
                        "packet_id": flit.packet_id,
                    })
        # 3. Accept arrivals (credit scheme guarantees FIFO space).
        for port, link in enumerate(self.in_links):
            if link is None:
                continue
            tagged = link.take_flit(tick)
            if tagged is None:
                continue
            flit, _vc = tagged
            if len(self.fifos[port]) >= self.fifo_depths[port]:
                raise RoutingError(f"{self.name}: FIFO overflow on "
                                   f"{self.port_name(port)} "
                                   f"(credit violation)")
            self.fifos[port].append(flit)
            enabled = True
        # 4. Return credits upstream for dequeued flits — write-on-change:
        # a stale credit wire is zeroed once, then left alone, so an idle
        # router drives nothing.
        for in_port, link in enumerate(self.in_links):
            if link is None:
                continue
            if credits_returned[in_port]:
                link.send_credits(0, credits_returned[in_port], tick)
                active = True
            elif link.settle_credit(0, tick):
                active = True
        self.gating.record(enabled)
        if not enabled and not active:
            # Fixed point: nothing arrived, nothing moved, every wire we
            # drive already holds its committed value. Forwarding (even
            # with buffered flits) can only resume after a credit return
            # or a new arrival — both are watched signal changes.
            self.sleep_until(*self._watch)

    def _note_starvation_single(self, out_port: int, tick: int) -> None:
        """Emit ``credit_exhausted`` on the edge starvation begins.

        The transition (a buffered flit wants the output, no credits) is
        a function of committed state only, so the event sequence is
        identical in both kernel modes: the naive loop's re-fired starved
        edges are suppressed by the ``_starved`` latch, and the fast path
        is always awake on the entering edge (a flit arrival or the
        credit-consuming forward immediately precedes it).
        """
        if self._starved[out_port]:
            return
        lock = self.locks[out_port]
        for in_port in range(self.n_ports):
            fifo = self.fifos[in_port]
            if not fifo:
                continue
            head = fifo[0]
            if self._route(head) != out_port:
                continue
            if lock is not None and in_port != lock:
                continue
            self._starved[out_port] = True
            self._kernel.emit("credit_exhausted", {
                "router": self.name, "output": out_port, "vc": 0,
                "input": in_port, "input_vc": 0,
            })
            return

    # -- the virtual-channel edge ----------------------------------------

    def _edge_vc(self, tick: int) -> None:
        enabled = False   # register-bank activity (gating statistics)
        active = False    # anything at all happened (sleep decision)
        observed = bool(self._kernel._event_subs)
        # 0. Drain the router pipeline: flits granted pipeline_depth - 1
        # cycles ago finish stage traversal and hit the link this edge.
        if self._stage_queue:
            while self._stage_queue and self._stage_queue[0][0] <= tick:
                _ready, st_port, st_vc, st_flit = self._stage_queue.popleft()
                self.out_links[st_port].send_flit(st_flit, st_vc, tick)
                enabled = True
            if self._stage_queue:
                active = True  # in-flight stage state: never sleep on it
        # 1. Collect per-VC credit returns.
        for port, link in enumerate(self.out_links):
            if link is None:
                continue
            for vc in range(self.n_vcs):
                if returned := link.take_credits(vc, tick):
                    self.credits[port][vc] += returned
                    active = True
                    if self._starved[port][vc]:
                        self._starved[port][vc] = False
        # 2. VC allocation: head flits without an output VC acquire one.
        if self._allocate_vcs(observed):
            enabled = True
        # 3. Switch allocation + traversal.
        credits_returned = [[0] * self.n_vcs for _ in range(self.n_ports)]
        port_used = [False] * self.n_ports  # one crossbar pass per input
        for out_port in range(self.n_ports):
            out_link = self.out_links[out_port]
            if out_link is None:
                continue
            requests = [False] * (self.n_ports * self.n_vcs)
            out_vc_of = [0] * (self.n_ports * self.n_vcs)
            blocked_vcs = []  # owners starved of credits (diagnosis)
            for in_port in range(self.n_ports):
                if port_used[in_port]:
                    continue
                for in_vc in range(self.n_vcs):
                    allocation = self.allocation[in_port][in_vc]
                    if allocation is None or allocation[0] != out_port:
                        continue
                    if not self.fifos[in_port][in_vc]:
                        continue
                    if self.credits[out_port][allocation[1]] <= 0:
                        blocked_vcs.append(allocation[1])
                        continue
                    flat = in_port * self.n_vcs + in_vc
                    requests[flat] = True
                    out_vc_of[flat] = allocation[1]
            if observed:
                # Every starved VC reports, even while sibling VCs keep
                # the physical port busy — per-VC starvation is exactly
                # what the event exists to expose.
                for vc in blocked_vcs:
                    self._note_starvation_vc(out_port, vc)
            if not any(requests):
                continue
            winner = self.allocator.switch_winner(out_port, requests,
                                                  out_vc_of)
            in_port, in_vc = divmod(winner, self.n_vcs)
            out_vc = self.allocation[in_port][in_vc][1]
            flit = self.fifos[in_port][in_vc].popleft()
            credits_returned[in_port][in_vc] += 1
            if self.pipeline_depth == 1:
                out_link.send_flit(flit, out_vc, tick)
            else:
                # Grant now (credits, VC locks, arbiter state — the
                # decision stage), traverse after the stage registers.
                self._stage_queue.append(
                    (tick + 2 * (self.pipeline_depth - 1),
                     out_port, out_vc, flit)
                )
            self.credits[out_port][out_vc] -= 1
            self.flits_forwarded += 1
            port_used[in_port] = True
            enabled = True
            if observed:
                self._kernel.emit("arbitration_grant", {
                    "router": self.name, "output": out_port, "vc": out_vc,
                    "input": in_port, "input_vc": in_vc, "flit": flit,
                })
            if flit.is_tail:
                # Tail releases the per-VC lock and the allocation.
                self.vc_owner[out_port][out_vc] = None
                self.allocation[in_port][in_vc] = None
                if observed and not flit.is_head:
                    self._kernel.emit("lock_release", {
                        "router": self.name, "output": out_port,
                        "vc": out_vc, "input": in_port, "input_vc": in_vc,
                        "packet_id": flit.packet_id,
                    })
        # 4. Accept arrivals into the per-VC FIFOs.
        for port, link in enumerate(self.in_links):
            if link is None:
                continue
            tagged = link.take_flit(tick)
            if tagged is None:
                continue
            flit, vc = tagged
            if len(self.fifos[port][vc]) >= self.fifo_depths[port]:
                raise RoutingError(
                    f"{self.name}: FIFO overflow on "
                    f"{self.port_name(port)} vc{vc} (credit violation)"
                )
            self.fifos[port][vc].append(flit)
            enabled = True
        # 5. Return credits upstream, write-on-change per VC wire.
        for in_port, link in enumerate(self.in_links):
            if link is None:
                continue
            for vc in range(self.n_vcs):
                if credits_returned[in_port][vc]:
                    link.send_credits(vc, credits_returned[in_port][vc],
                                      tick)
                    active = True
                elif link.settle_credit(vc, tick):
                    active = True
        self.gating.record(enabled)
        if not enabled and not active:
            # Fixed point: ownership only changes when a tail is
            # forwarded (this edge would have been enabled), so progress
            # can only resume with an arrival or a credit return — both
            # watched signal changes.
            self.sleep_until(*self._watch)

    # -- VC allocation ---------------------------------------------------

    def _allocate_vcs(self, observed: bool) -> bool:
        """Stage one: grant free output VCs to waiting head flits.

        Requests are collected per pending input VC from its policy
        candidates — preferred pairs while any is free, escape fallback
        otherwise — then free output VCs are walked in a fixed order
        (port ascending, VC descending) granting via the allocator's
        VC stage among the requesting input VCs. Single pass,
        deterministic, at most one allocation per input VC per edge.
        """
        want: dict[tuple[int, int], list[int]] = {}
        for in_port in range(self.n_ports):
            for in_vc in range(self.n_vcs):
                fifo = self.fifos[in_port][in_vc]
                if not fifo or self.allocation[in_port][in_vc] is not None:
                    continue
                head = fifo[0]
                if not head.is_head:
                    raise RoutingError(
                        f"{self.name}: body flit {head} without an "
                        f"allocation on {self.port_name(in_port)} "
                        f"vc{in_vc}"
                    )
                preferred, fallback = self._candidates(in_port, in_vc, head)
                requested = [
                    pair for pair in preferred
                    if self.vc_owner[pair[0]][pair[1]] is None
                    and self.out_links[pair[0]] is not None
                ]
                if not requested:
                    requested = [
                        pair for pair in fallback
                        if self.vc_owner[pair[0]][pair[1]] is None
                        and self.out_links[pair[0]] is not None
                    ]
                flat = in_port * self.n_vcs + in_vc
                for pair in requested:
                    want.setdefault(pair, []).append(flat)
        if not want:
            return False
        allocated_inputs: set[int] = set()
        did_allocate = False
        for out_port in range(self.n_ports):
            for out_vc in range(self.n_vcs - 1, -1, -1):
                requesters = want.get((out_port, out_vc))
                if not requesters:
                    continue
                requests = [False] * (self.n_ports * self.n_vcs)
                any_request = False
                for flat in requesters:
                    if flat not in allocated_inputs:
                        requests[flat] = True
                        any_request = True
                if not any_request:
                    continue
                winner = self.allocator.vc_winner(out_port, out_vc,
                                                  requests)
                in_port, in_vc = divmod(winner, self.n_vcs)
                self.vc_owner[out_port][out_vc] = (in_port, in_vc)
                self.allocation[in_port][in_vc] = (out_port, out_vc)
                allocated_inputs.add(winner)
                self.vcs_allocated += 1
                did_allocate = True
                if observed:
                    head = self.fifos[in_port][in_vc][0]
                    self._kernel.emit("vc_allocated", {
                        "router": self.name, "output": out_port,
                        "vc": out_vc, "input": in_port, "input_vc": in_vc,
                        "flit": head,
                    })
                    if not head.is_tail:
                        self._kernel.emit("lock_acquire", {
                            "router": self.name, "output": out_port,
                            "vc": out_vc, "input": in_port,
                            "input_vc": in_vc,
                            "packet_id": head.packet_id,
                        })
        return did_allocate

    def _note_starvation_vc(self, out_port: int, out_vc: int) -> None:
        """Emit ``credit_exhausted`` on the edge starvation begins."""
        if self._starved[out_port][out_vc]:
            return
        self._starved[out_port][out_vc] = True
        in_port, in_vc = self.vc_owner[out_port][out_vc]
        self._kernel.emit("credit_exhausted", {
            "router": self.name, "output": out_port, "vc": out_vc,
            "input": in_port, "input_vc": in_vc,
        })

    @property
    def buffered_flits(self) -> int:
        if self.n_vcs == 1:
            return sum(len(fifo) for fifo in self.fifos)
        return sum(len(fifo) for port in self.fifos for fifo in port)

    @property
    def buffer_capacity(self) -> int:
        """Total FIFO capacity: per-port depth x VCs over ports in use."""
        return sum(self.fifo_depths[port] * self.n_vcs
                   for port, link in enumerate(self.in_links)
                   if link is not None)
