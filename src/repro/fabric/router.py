"""The shared credit-based fabric router.

One router implementation serves every synchronously clocked fabric (mesh,
torus, ring, and whatever the registry grows next): an N-port wormhole
router with input FIFOs, credit-based flow control, per-output round-robin
arbitration and wormhole locks. What differs between fabrics — where the
ports lead and which output a flit wants — lives in the
:mod:`~repro.fabric.routing` strategy supplied at construction, typically
~30 lines per topology.

Single-edge clocking (all routers share parity 0 in the kernel: one firing
per clock cycle). Each input port has a FIFO of ``buffer_depth`` flits —
the stall buffers the IC-NoC architecture avoids. A router may only
forward a flit toward a neighbour when it holds a credit for that
neighbour's input FIFO; the neighbour returns a credit when it dequeues.
Per-port FIFO depths follow the attached link's ``capacity`` when the
assembling network sized one (segmented links and pipelined routers need
``pipeline_depth + 2 * segments`` credits to stream — see docs/fabric.md).

**Pipelined router.** ``pipeline_depth=1`` (the default) is the
historical single-cycle router: route, arbitrate, and traverse all happen
on the grant edge, bit-identically to every build before the knob
existed. ``pipeline_depth=N`` models an RC/VA/SA/ST-style staged
microarchitecture at cycle accuracy: arbitration, credit accounting, and
wormhole-lock updates still happen on the grant edge (stage one — the
decision), but the flit spends ``N - 1`` further cycles in stage
registers before the link sees it. In-flight stage state keeps the
router awake (the idle/sleep contract extends to the stage registers:
a router never sleeps with a flit between grant and link). The payoff is
clock frequency, priced in :mod:`repro.timing.frequency` — each of the N
stages covers ``1/N`` of the router logic plus one register overhead.

Routers honour the idle-component contract (docs/kernel.md): signals are
driven write-on-change (a credit wire is zeroed once after a return, then
left alone), so an edge that receives nothing, forwards nothing, and has
nothing buffered is a fixed point — the router sleeps watching its input
flit wires and output credit wires, and fabric-heavy sweeps benefit from
the kernel's activity-driven fast path. Skipped edges are backfilled into
the gating statistics via the shared
:class:`~repro.sim.component.GatedComponentMixin`.

**Bubble rule.** When the routing strategy flags ``needs_bubble`` (ring-
closing topologies: torus, ring), a head flit may only *enter* a ring —
from the local port or by turning out of another dimension — while the
target FIFO keeps a free slot afterwards (``credits >= 2``); same-ring
transit is exempt. See :mod:`repro.fabric.routing` for the argument.

**Kernel events.** With any :meth:`~repro.sim.kernel.SimKernel.subscribe`
listener attached, the router emits two congestion-diagnosis events (cheap
no-ops otherwise, so the fast path never pays for unobserved visibility):

* ``"arbitration_grant"`` — an output port granted an input; data is a
  dict with ``router``, ``output``, ``input``, and the ``flit``.
* ``"credit_exhausted"`` — a flit wants an output whose credits just ran
  dry. Edge-triggered on *entering* starvation (cleared when credits
  return), so both kernel modes emit the identical event sequence even
  though the naive loop re-fires starved routers every cycle.
* ``"lock_acquire"`` / ``"lock_release"`` — a multi-flit packet's head
  took an output's wormhole lock / its tail released it; data carries
  ``router``, ``output``, ``input``, and the ``packet_id``. Single-flit
  packets never hold the lock, so they emit neither. Acquisitions and
  releases are discrete state transitions, hence edge-triggered and
  mode-identical by construction — together with ``arbitration_grant``
  they complete head-of-line-blocking diagnosis (how long an output sat
  locked between grants).

The ``output``/``input`` fields are port *indices*; consumers label
them via :meth:`FabricRouter.port_name`. These payloads are a stable
contract: the :mod:`repro.telemetry` metrics registry and flit tracer
key grant counts, stall episodes, and hop records off them, and the
telemetry equivalence suite pins the emitted sequences across both
kernel modes on every registered topology.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.clocking.gating import GatingStats
from repro.errors import ConfigurationError, RoutingError
from repro.fabric.link import CreditLink
from repro.fabric.routing import RouteFn, RoutingStrategy
from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit
from repro.sim.component import ClockedComponent, GatedComponentMixin
from repro.sim.kernel import SimKernel
from repro.sim.signal import Signal


class FabricRouter(GatedComponentMixin, ClockedComponent):
    """N-port credit/wormhole router with a pluggable routing function."""

    def __init__(self, kernel: SimKernel, name: str, n_ports: int,
                 route: RouteFn, buffer_depth: int = 4,
                 ring_transit: RoutingStrategy | None = None,
                 port_names: Sequence[str] | None = None,
                 pipeline_depth: int = 1, register: bool = True):
        super().__init__(name, parity=0)
        if n_ports < 2:
            raise ConfigurationError("a router needs at least 2 ports")
        if buffer_depth < 2:
            raise ConfigurationError("credit flow control needs depth >= 2")
        if pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        self.n_ports = n_ports
        self.buffer_depth = buffer_depth
        self.pipeline_depth = pipeline_depth
        # Flits between grant and link traversal, as (ready_tick, out_port,
        # flit). Grants are issued in tick order with a constant stage
        # delay, so ready ticks are monotone and one queue suffices.
        self._stage_queue: deque[tuple[int, int, Flit]] = deque()
        self._route_fn = route
        # Bubble flow control: the strategy deciding which in->out pairs
        # are same-ring transit; None disables the rule (acyclic fabrics).
        self._ring_transit = (ring_transit
                              if ring_transit is not None
                              and ring_transit.needs_bubble else None)
        self._port_names = port_names
        # in_links[p]: flits arriving on port p; out_links[p]: flits leaving.
        self.in_links: list[CreditLink | None] = [None] * n_ports
        self.out_links: list[CreditLink | None] = [None] * n_ports
        self.fifos: list[deque[Flit]] = [deque() for _ in range(n_ports)]
        # Per-port FIFO depth: buffer_depth unless the attached link was
        # sized for a longer credit loop (see connect()).
        self.fifo_depths = [buffer_depth] * n_ports
        self.credits = [0] * n_ports  # credits toward each output's consumer
        self.locks: list[int | None] = [None] * n_ports
        self.arbiters = [RoundRobinArbiter(n_ports) for _ in range(n_ports)]
        self._gating = GatingStats()
        self.flits_forwarded = 0
        # Starvation edge-detector per output (credit_exhausted events).
        self._starved = [False] * n_ports
        # Signals to watch while asleep: anything arriving (flits in,
        # credits back) makes the next edge act again.
        self._watch: list[Signal] = []
        # register=False leaves the router unscheduled (an array backend
        # executes its semantics instead); state and wiring are identical.
        if register:
            kernel.add_component(self)

    def port_name(self, port: int) -> str:
        if self._port_names is not None and port < len(self._port_names):
            return self._port_names[port]
        return f"port{port}"

    def connect(self, port: int, in_link: CreditLink | None,
                out_link: CreditLink | None) -> None:
        self.in_links[port] = in_link
        self.out_links[port] = out_link
        if in_link is not None and in_link.capacity is not None:
            self.fifo_depths[port] = in_link.capacity
        if out_link is not None:
            # Initial credits mirror the consumer's FIFO depth — the link
            # carries the agreed capacity so the two cannot disagree.
            self.credits[port] = (out_link.capacity
                                  if out_link.capacity is not None
                                  else self.buffer_depth)
        self._watch = [link.flit for link in self.in_links
                       if link is not None]
        self._watch += [link.credit for link in self.out_links
                        if link is not None]

    def _route(self, flit: Flit) -> int:
        return self._route_fn(flit)

    def _bubble_blocks(self, in_port: int, out_port: int) -> bool:
        """Would forwarding a head flit in->out violate the bubble rule?"""
        return (self._ring_transit is not None
                and not self._ring_transit.ring_transit(in_port, out_port)
                and self.credits[out_port] < 2)

    def on_edge(self, tick: int) -> None:
        enabled = False   # register-bank activity (gating statistics)
        active = False    # anything at all happened (sleep decision)
        observed = bool(self._kernel._event_subs)
        # 0. Drain the router pipeline: flits granted pipeline_depth - 1
        # cycles ago finish stage traversal and hit the link this edge.
        if self._stage_queue:
            while self._stage_queue and self._stage_queue[0][0] <= tick:
                _ready, stage_port, stage_flit = self._stage_queue.popleft()
                self.out_links[stage_port].send_flit(stage_flit, tick)
                enabled = True
            if self._stage_queue:
                active = True  # in-flight stage state: never sleep on it
        # 1. Collect credit returns (tick-tagged: consumed exactly once).
        for port, link in enumerate(self.out_links):
            if link is None:
                continue
            if returned := link.take_credits(tick):
                self.credits[port] += returned
                active = True
                if self._starved[port]:
                    # Starvation ends exactly when credits return — clear
                    # the event latch unconditionally so a later observer
                    # sees the next starvation episode.
                    self._starved[port] = False
        # 2. Forward: per output, arbitrate among input FIFO heads. Runs
        # before arrivals are enqueued, so a flit spends at least one full
        # cycle in the router (head latency 2 cycles/hop incl. the wire).
        credits_returned = [0] * self.n_ports
        for out_port in range(self.n_ports):
            out_link = self.out_links[out_port]
            if out_link is None:
                continue
            if self.credits[out_port] <= 0:
                if observed:
                    self._note_starvation(out_port, tick)
                continue
            lock = self.locks[out_port]
            requests = []
            for in_port in range(self.n_ports):
                fifo = self.fifos[in_port]
                if not fifo:
                    requests.append(False)
                    continue
                head = fifo[0]
                if self._route(head) != out_port:
                    requests.append(False)
                    continue
                if lock is not None:
                    requests.append(in_port == lock)
                else:
                    requests.append(head.is_head and not self._bubble_blocks(
                        in_port, out_port))
            if not any(requests):
                continue
            winner = self.arbiters[out_port].grant(requests)
            flit = self.fifos[winner].popleft()
            credits_returned[winner] += 1
            if self.pipeline_depth == 1:
                out_link.send_flit(flit, tick)
            else:
                # Grant now (credits, locks, arbiter state — the decision
                # stage), traverse after the remaining stage registers.
                self._stage_queue.append(
                    (tick + 2 * (self.pipeline_depth - 1), out_port, flit)
                )
            self.credits[out_port] -= 1
            self.flits_forwarded += 1
            enabled = True
            if observed:
                self._kernel.emit("arbitration_grant", {
                    "router": self.name, "output": out_port,
                    "input": winner, "flit": flit,
                })
            if flit.is_tail:
                self.locks[out_port] = None
                if observed and not flit.is_head:
                    self._kernel.emit("lock_release", {
                        "router": self.name, "output": out_port,
                        "input": winner, "packet_id": flit.packet_id,
                    })
            elif flit.is_head:
                self.locks[out_port] = winner
                if observed:
                    self._kernel.emit("lock_acquire", {
                        "router": self.name, "output": out_port,
                        "input": winner, "packet_id": flit.packet_id,
                    })
        # 3. Accept arrivals (credit scheme guarantees FIFO space).
        for port, link in enumerate(self.in_links):
            if link is None:
                continue
            flit = link.take_flit(tick)
            if flit is None:
                continue
            if len(self.fifos[port]) >= self.fifo_depths[port]:
                raise RoutingError(f"{self.name}: FIFO overflow on "
                                   f"{self.port_name(port)} "
                                   f"(credit violation)")
            self.fifos[port].append(flit)
            enabled = True
        # 4. Return credits upstream for dequeued flits — write-on-change:
        # a stale credit wire is zeroed once, then left alone, so an idle
        # router drives nothing.
        for in_port, link in enumerate(self.in_links):
            if link is None:
                continue
            if credits_returned[in_port]:
                link.send_credits(credits_returned[in_port], tick)
                active = True
            elif link.settle_credit(tick):
                active = True
        self.gating.record(enabled)
        if not enabled and not active:
            # Fixed point: nothing arrived, nothing moved, every wire we
            # drive already holds its committed value. Forwarding (even
            # with buffered flits) can only resume after a credit return
            # or a new arrival — both are watched signal changes.
            self.sleep_until(*self._watch)

    def _note_starvation(self, out_port: int, tick: int) -> None:
        """Emit ``credit_exhausted`` on the edge starvation begins.

        The transition (a buffered flit wants the output, no credits) is
        a function of committed state only, so the event sequence is
        identical in both kernel modes: the naive loop's re-fired starved
        edges are suppressed by the ``_starved`` latch, and the fast path
        is always awake on the entering edge (a flit arrival or the
        credit-consuming forward immediately precedes it).
        """
        if self._starved[out_port]:
            return
        lock = self.locks[out_port]
        for in_port in range(self.n_ports):
            fifo = self.fifos[in_port]
            if not fifo:
                continue
            head = fifo[0]
            if self._route(head) != out_port:
                continue
            if lock is not None and in_port != lock:
                continue
            self._starved[out_port] = True
            self._kernel.emit("credit_exhausted", {
                "router": self.name, "output": out_port, "input": in_port,
            })
            return

    @property
    def buffered_flits(self) -> int:
        return sum(len(fifo) for fifo in self.fifos)

    @property
    def buffer_capacity(self) -> int:
        """Total FIFO capacity: per-port depths over ports in use."""
        return sum(self.fifo_depths[port]
                   for port, link in enumerate(self.in_links)
                   if link is not None)
