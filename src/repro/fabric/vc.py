"""Virtual-channel flow control for the credit fabrics.

Fabrics built with ``flow_control="vc"`` replace the wormhole stack's
single per-port FIFO (and, on ring-closing topologies, the bubble rule
with its ``flits <= buffer_depth - 1`` packet-length bound) with virtual
channels:

* :class:`VcCreditLink` — one physical ``flit`` wire (one flit per cycle
  per link, VC-tagged) plus one credit wire **per VC**, so the consumer's
  per-VC input FIFOs are flow-controlled independently;
* :class:`VcFabricRouter` — per-(port, VC) input FIFOs, per-VC wormhole
  locks (an output VC is owned by exactly one packet at a time), and a
  two-stage allocator: **VC allocation** (head flits acquire an output
  VC, chosen by the pluggable :class:`~repro.fabric.routing.VcPolicy`)
  followed by **switch allocation** (one flit per output port and per
  input port per cycle, round-robin among input VCs holding credits);
* :class:`VcFabricSource` / :class:`VcFabricSink` — the local-port
  adapters, VC-tagged.

Which output VCs a head flit may request is the policy's business:
dateline classes make torus/ring deadlock-free with no packet-length
bound, escape VCs add minimal-adaptive routing over a deterministic XY
escape (see :mod:`repro.fabric.routing`).

Everything honours the idle-component contract (docs/kernel.md): wires
are driven write-on-change, a quiet router sleeps watching its input
flit wires and per-VC output credit wires, and both kernel modes commit
identical state — the registry-wide equivalence suite covers every
topology × flow-control combination.

**Kernel events.** With a subscriber attached (guarded no-ops
otherwise), the router emits the shared ``arbitration_grant`` /
``credit_exhausted`` / ``lock_acquire`` / ``lock_release`` events (all
carrying a ``vc`` field here) plus one of its own:

* ``"vc_allocated"`` — the VC allocator granted an output VC to a head
  flit; data carries ``router``, ``output``, ``vc``, ``input``,
  ``input_vc``, and the ``flit``. Allocation is edge-triggered by
  construction (a packet acquires each output VC exactly once), so both
  kernel modes emit the identical sequence.

The ``vc`` field on the shared events is what lets the
:mod:`repro.telemetry` registry attribute credit stalls and grants per
``router:port:vcN`` key instead of per port — the per-VC breakdown the
dateline/escape policies need for congestion diagnosis.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Sequence

from repro.clocking.gating import GatingStats
from repro.errors import ConfigurationError, RoutingError
from repro.fabric.link import LINK_LATENCY_TICKS, LinkStage
from repro.fabric.routing import VcCandidateFn
from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.sim.component import ClockedComponent, GatedComponentMixin
from repro.sim.kernel import SimKernel
from repro.sim.signal import Signal

__all__ = ["VcCreditLink", "VcFabricRouter", "VcFabricSource",
           "VcFabricSink"]


class VcCreditLink:
    """One directed link: a shared flit wire, per-VC credit wires.

    The physical channel carries at most one flit per cycle — VCs share
    the wire, which is the whole point (a blocked packet on one VC no
    longer blocks the link). Flit payloads are ``((flit, vc), tick)``
    tick-tagged exactly like :class:`~repro.fabric.link.CreditLink`;
    credits return on the wire of the VC that freed a FIFO slot.

    ``segments=K > 1`` pipelines the link exactly like the wormhole
    flavour: the shared flit wire becomes K segments joined by ``K - 1``
    :class:`~repro.fabric.link.LinkStage` registers (each relaying the
    flit downstream and every VC's credits upstream), the per-VC credit
    loops grow to the full ``pipeline_depth + 2 * segments`` round trip
    (the ``capacity`` the assembling network attaches), and ``segments=1``
    stays bit-identical to the historical direct wire.
    """

    def __init__(self, kernel: SimKernel, name: str, n_vcs: int,
                 segments: int = 1, capacity: int | None = None):
        if n_vcs < 1:
            raise ConfigurationError("a VC link needs at least 1 VC")
        if segments < 1:
            raise ConfigurationError(
                f"a link needs >= 1 segment, got {segments}"
            )
        if capacity is not None and capacity < 2:
            raise ConfigurationError(
                f"credit flow control needs link capacity >= 2, "
                f"got {capacity}"
            )
        self.name = name
        self.n_vcs = n_vcs
        self.segments = segments
        self.capacity = capacity
        self.stages: list[LinkStage] = []
        if segments == 1:
            self.flit: Signal = kernel.signal(f"{name}.flit", initial=None)
            self.credits: list[Signal] = [
                kernel.signal(f"{name}.credit{vc}", initial=0)
                for vc in range(n_vcs)
            ]
            self._flit_in = self.flit
            self._credits_out = self.credits
            return
        flit_wires = [kernel.signal(f"{name}.flit.s{j}", initial=None)
                      for j in range(segments - 1)]
        flit_wires.append(kernel.signal(f"{name}.flit", initial=None))
        # credit_wires[vc][j]: wire j of VC vc's upstream chain; wire 0
        # (producer side) keeps the historical name the senders watch.
        credit_wires = [
            [kernel.signal(f"{name}.credit{vc}", initial=0)]
            + [kernel.signal(f"{name}.credit{vc}.s{j}", initial=0)
               for j in range(1, segments)]
            for vc in range(n_vcs)
        ]
        self.flit = flit_wires[-1]                       # consumer side
        self.credits = [chain[0] for chain in credit_wires]  # producer side
        self._flit_in = flit_wires[0]
        self._credits_out = [chain[-1] for chain in credit_wires]
        self.stages = [
            LinkStage(kernel, f"{name}.st{j}",
                      forward=[(flit_wires[j], flit_wires[j + 1])],
                      backward=[(chain[j + 1], chain[j])
                                for chain in credit_wires])
            for j in range(segments - 1)
        ]

    # -- producer side ---------------------------------------------------

    def send_flit(self, flit: Any, vc: int, tick: int) -> None:
        """Launch a VC-tagged flit; consumed ``segments`` cycles later."""
        self._flit_in.set(((flit, vc), tick), tick)

    def send_credits(self, vc: int, count: int, tick: int) -> None:
        """Return ``count`` credits for ``vc`` (consumer side); collected
        ``segments`` cycles later."""
        self._credits_out[vc].set((count, tick), tick)

    # -- consumer side ---------------------------------------------------

    def take_flit(self, tick: int) -> tuple[Any, int] | None:
        """The ``(flit, vc)`` arriving exactly this edge, or None."""
        payload = self.flit.value
        if payload is None:
            return None
        tagged, sent_tick = payload
        return tagged if sent_tick == tick - LINK_LATENCY_TICKS else None

    def take_credits(self, vc: int, tick: int) -> int:
        """Credits for ``vc`` arriving exactly this edge (0 if none)."""
        payload = self.credits[vc].value
        if payload is None or payload == 0:
            return 0
        count, sent_tick = payload
        return count if sent_tick == tick - LINK_LATENCY_TICKS else 0

    def settle_credit(self, vc: int, tick: int) -> bool:
        """Zero a stale credit wire (write-on-change); True if it drove.

        On a segmented link this settles the consumer-side wire; the
        intermediate stages settle their own.
        """
        if self._credits_out[vc].value != 0:
            self._credits_out[vc].set(0, tick)
            return True
        return False

    def __repr__(self) -> str:
        if self.segments == 1:
            return f"VcCreditLink({self.name!r}, n_vcs={self.n_vcs})"
        return (f"VcCreditLink({self.name!r}, n_vcs={self.n_vcs}, "
                f"segments={self.segments})")


class VcFabricRouter(GatedComponentMixin, ClockedComponent):
    """N-port virtual-channel router with a two-stage allocator.

    Per (input port, VC): one FIFO of ``buffer_depth`` flits and the
    packet's current allocation — the ``(out_port, out_vc)`` its head
    acquired, held until the tail passes (the per-VC wormhole lock).
    Per (output port, VC): a credit counter toward the consumer's FIFO
    and the owning input VC.

    Each edge runs, in order: credit collection, **VC allocation**
    (round-robin arbiter per output VC over the input VCs whose policy
    candidates name it; outputs walked port-ascending, VC-descending so
    adaptive VCs — by convention the high indices — win over escape VCs
    when both are free), **switch allocation** (round-robin per output
    port among allocated input VCs with buffered flits and credits; at
    most one flit per output *and* per input port per cycle — the
    crossbar constraint), arrivals, and write-on-change credit returns.
    """

    def __init__(self, kernel: SimKernel, name: str, n_ports: int,
                 candidates: VcCandidateFn, n_vcs: int,
                 buffer_depth: int = 4,
                 port_names: Sequence[str] | None = None,
                 pipeline_depth: int = 1, register: bool = True):
        super().__init__(name, parity=0)
        if n_ports < 2:
            raise ConfigurationError("a router needs at least 2 ports")
        if n_vcs < 2:
            raise ConfigurationError("a VC router needs >= 2 VCs")
        if buffer_depth < 2:
            raise ConfigurationError("credit flow control needs depth >= 2")
        if pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        self.n_ports = n_ports
        self.n_vcs = n_vcs
        self.buffer_depth = buffer_depth
        self.pipeline_depth = pipeline_depth
        # Flits between switch grant and link traversal, as (ready_tick,
        # out_port, out_vc, flit); ready ticks are monotone (constant
        # stage delay), so one queue suffices.
        self._stage_queue: deque[tuple[int, int, int, Flit]] = deque()
        self._candidates = candidates
        self._port_names = port_names
        self.in_links: list[VcCreditLink | None] = [None] * n_ports
        self.out_links: list[VcCreditLink | None] = [None] * n_ports
        # Indexed [port][vc] throughout; flattened index = port*n_vcs+vc.
        self.fifos: list[list[deque[Flit]]] = [
            [deque() for _ in range(n_vcs)] for _ in range(n_ports)
        ]
        # Per-port FIFO depth (shared by the port's VCs): buffer_depth
        # unless the attached link was sized for a longer credit loop.
        self.fifo_depths = [buffer_depth] * n_ports
        self.credits: list[list[int]] = [[0] * n_vcs
                                         for _ in range(n_ports)]
        #: Which input VC owns each output VC (the per-VC wormhole lock).
        self.vc_owner: list[list[tuple[int, int] | None]] = [
            [None] * n_vcs for _ in range(n_ports)
        ]
        #: The (out_port, out_vc) each input VC's packet was allocated.
        self.allocation: list[list[tuple[int, int] | None]] = [
            [None] * n_vcs for _ in range(n_ports)
        ]
        flat = n_ports * n_vcs
        self.va_arbiters = [RoundRobinArbiter(flat) for _ in range(flat)]
        self.sa_arbiters = [RoundRobinArbiter(flat) for _ in range(n_ports)]
        self._gating = GatingStats()
        self.flits_forwarded = 0
        self.vcs_allocated = 0
        self._starved = [[False] * n_vcs for _ in range(n_ports)]
        self._watch: list[Signal] = []
        # register=False leaves the router unscheduled (an array backend
        # executes its semantics instead); state and wiring are identical.
        if register:
            kernel.add_component(self)

    def port_name(self, port: int) -> str:
        if self._port_names is not None and port < len(self._port_names):
            return self._port_names[port]
        return f"port{port}"

    def connect(self, port: int, in_link: VcCreditLink | None,
                out_link: VcCreditLink | None) -> None:
        self.in_links[port] = in_link
        self.out_links[port] = out_link
        if in_link is not None and in_link.capacity is not None:
            self.fifo_depths[port] = in_link.capacity
        if out_link is not None:
            per_vc = (out_link.capacity if out_link.capacity is not None
                      else self.buffer_depth)
            self.credits[port] = [per_vc] * self.n_vcs
        self._watch = [link.flit for link in self.in_links
                       if link is not None]
        for link in self.out_links:
            if link is not None:
                self._watch += link.credits

    # -- the edge --------------------------------------------------------

    def on_edge(self, tick: int) -> None:
        enabled = False   # register-bank activity (gating statistics)
        active = False    # anything at all happened (sleep decision)
        observed = bool(self._kernel._event_subs)
        # 0. Drain the router pipeline: flits granted pipeline_depth - 1
        # cycles ago finish stage traversal and hit the link this edge.
        if self._stage_queue:
            while self._stage_queue and self._stage_queue[0][0] <= tick:
                _ready, st_port, st_vc, st_flit = self._stage_queue.popleft()
                self.out_links[st_port].send_flit(st_flit, st_vc, tick)
                enabled = True
            if self._stage_queue:
                active = True  # in-flight stage state: never sleep on it
        # 1. Collect per-VC credit returns.
        for port, link in enumerate(self.out_links):
            if link is None:
                continue
            for vc in range(self.n_vcs):
                if returned := link.take_credits(vc, tick):
                    self.credits[port][vc] += returned
                    active = True
                    if self._starved[port][vc]:
                        self._starved[port][vc] = False
        # 2. VC allocation: head flits without an output VC acquire one.
        if self._allocate_vcs(observed):
            enabled = True
        # 3. Switch allocation + traversal.
        credits_returned = [[0] * self.n_vcs for _ in range(self.n_ports)]
        port_used = [False] * self.n_ports  # one crossbar pass per input
        for out_port in range(self.n_ports):
            out_link = self.out_links[out_port]
            if out_link is None:
                continue
            requests = [False] * (self.n_ports * self.n_vcs)
            blocked_vcs = []  # owners starved of credits (diagnosis)
            for in_port in range(self.n_ports):
                if port_used[in_port]:
                    continue
                for in_vc in range(self.n_vcs):
                    allocation = self.allocation[in_port][in_vc]
                    if allocation is None or allocation[0] != out_port:
                        continue
                    if not self.fifos[in_port][in_vc]:
                        continue
                    if self.credits[out_port][allocation[1]] <= 0:
                        blocked_vcs.append(allocation[1])
                        continue
                    requests[in_port * self.n_vcs + in_vc] = True
            if observed:
                # Every starved VC reports, even while sibling VCs keep
                # the physical port busy — per-VC starvation is exactly
                # what the event exists to expose.
                for vc in blocked_vcs:
                    self._note_starvation(out_port, vc)
            if not any(requests):
                continue
            winner = self.sa_arbiters[out_port].grant(requests)
            in_port, in_vc = divmod(winner, self.n_vcs)
            out_vc = self.allocation[in_port][in_vc][1]
            flit = self.fifos[in_port][in_vc].popleft()
            credits_returned[in_port][in_vc] += 1
            if self.pipeline_depth == 1:
                out_link.send_flit(flit, out_vc, tick)
            else:
                # Grant now (credits, VC locks, arbiter state — the
                # decision stage), traverse after the stage registers.
                self._stage_queue.append(
                    (tick + 2 * (self.pipeline_depth - 1),
                     out_port, out_vc, flit)
                )
            self.credits[out_port][out_vc] -= 1
            self.flits_forwarded += 1
            port_used[in_port] = True
            enabled = True
            if observed:
                self._kernel.emit("arbitration_grant", {
                    "router": self.name, "output": out_port, "vc": out_vc,
                    "input": in_port, "input_vc": in_vc, "flit": flit,
                })
            if flit.is_tail:
                # Tail releases the per-VC lock and the allocation.
                self.vc_owner[out_port][out_vc] = None
                self.allocation[in_port][in_vc] = None
                if observed and not flit.is_head:
                    self._kernel.emit("lock_release", {
                        "router": self.name, "output": out_port,
                        "vc": out_vc, "input": in_port, "input_vc": in_vc,
                        "packet_id": flit.packet_id,
                    })
        # 4. Accept arrivals into the per-VC FIFOs.
        for port, link in enumerate(self.in_links):
            if link is None:
                continue
            tagged = link.take_flit(tick)
            if tagged is None:
                continue
            flit, vc = tagged
            if len(self.fifos[port][vc]) >= self.fifo_depths[port]:
                raise RoutingError(
                    f"{self.name}: FIFO overflow on "
                    f"{self.port_name(port)} vc{vc} (credit violation)"
                )
            self.fifos[port][vc].append(flit)
            enabled = True
        # 5. Return credits upstream, write-on-change per VC wire.
        for in_port, link in enumerate(self.in_links):
            if link is None:
                continue
            for vc in range(self.n_vcs):
                if credits_returned[in_port][vc]:
                    link.send_credits(vc, credits_returned[in_port][vc],
                                      tick)
                    active = True
                elif link.settle_credit(vc, tick):
                    active = True
        self.gating.record(enabled)
        if not enabled and not active:
            # Fixed point: ownership only changes when a tail is
            # forwarded (this edge would have been enabled), so progress
            # can only resume with an arrival or a credit return — both
            # watched signal changes.
            self.sleep_until(*self._watch)

    # -- VC allocation ---------------------------------------------------

    def _allocate_vcs(self, observed: bool) -> bool:
        """Stage one: grant free output VCs to waiting head flits.

        Requests are collected per pending input VC from its policy
        candidates — preferred pairs while any is free, escape fallback
        otherwise — then free output VCs are walked in a fixed order
        (port ascending, VC descending) granting round-robin among the
        requesting input VCs. Single pass, deterministic, at most one
        allocation per input VC per edge.
        """
        want: dict[tuple[int, int], list[int]] = {}
        for in_port in range(self.n_ports):
            for in_vc in range(self.n_vcs):
                fifo = self.fifos[in_port][in_vc]
                if not fifo or self.allocation[in_port][in_vc] is not None:
                    continue
                head = fifo[0]
                if not head.is_head:
                    raise RoutingError(
                        f"{self.name}: body flit {head} without an "
                        f"allocation on {self.port_name(in_port)} "
                        f"vc{in_vc}"
                    )
                preferred, fallback = self._candidates(in_port, in_vc, head)
                requested = [
                    pair for pair in preferred
                    if self.vc_owner[pair[0]][pair[1]] is None
                    and self.out_links[pair[0]] is not None
                ]
                if not requested:
                    requested = [
                        pair for pair in fallback
                        if self.vc_owner[pair[0]][pair[1]] is None
                        and self.out_links[pair[0]] is not None
                    ]
                flat = in_port * self.n_vcs + in_vc
                for pair in requested:
                    want.setdefault(pair, []).append(flat)
        if not want:
            return False
        allocated_inputs: set[int] = set()
        did_allocate = False
        for out_port in range(self.n_ports):
            for out_vc in range(self.n_vcs - 1, -1, -1):
                requesters = want.get((out_port, out_vc))
                if not requesters:
                    continue
                requests = [False] * (self.n_ports * self.n_vcs)
                any_request = False
                for flat in requesters:
                    if flat not in allocated_inputs:
                        requests[flat] = True
                        any_request = True
                if not any_request:
                    continue
                winner = self.va_arbiters[out_port * self.n_vcs
                                         + out_vc].grant(requests)
                in_port, in_vc = divmod(winner, self.n_vcs)
                self.vc_owner[out_port][out_vc] = (in_port, in_vc)
                self.allocation[in_port][in_vc] = (out_port, out_vc)
                allocated_inputs.add(winner)
                self.vcs_allocated += 1
                did_allocate = True
                if observed:
                    head = self.fifos[in_port][in_vc][0]
                    self._kernel.emit("vc_allocated", {
                        "router": self.name, "output": out_port,
                        "vc": out_vc, "input": in_port, "input_vc": in_vc,
                        "flit": head,
                    })
                    if not head.is_tail:
                        self._kernel.emit("lock_acquire", {
                            "router": self.name, "output": out_port,
                            "vc": out_vc, "input": in_port,
                            "input_vc": in_vc,
                            "packet_id": head.packet_id,
                        })
        return did_allocate

    def _note_starvation(self, out_port: int, out_vc: int) -> None:
        """Emit ``credit_exhausted`` on the edge starvation begins."""
        if self._starved[out_port][out_vc]:
            return
        self._starved[out_port][out_vc] = True
        in_port, in_vc = self.vc_owner[out_port][out_vc]
        self._kernel.emit("credit_exhausted", {
            "router": self.name, "output": out_port, "vc": out_vc,
            "input": in_port, "input_vc": in_vc,
        })

    @property
    def buffered_flits(self) -> int:
        return sum(len(fifo) for port in self.fifos for fifo in port)

    @property
    def buffer_capacity(self) -> int:
        """Total FIFO capacity: per-port depth x VCs over ports in use."""
        return sum(self.fifo_depths[port] * self.n_vcs
                   for port, link in enumerate(self.in_links)
                   if link is not None)


class VcFabricSource(ClockedComponent):
    """Injects flits into a router's local port on the injection VC."""

    def __init__(self, kernel: SimKernel, name: str, link: VcCreditLink,
                 credits: int, vc: int = 0, register: bool = True):
        super().__init__(name, parity=0)
        self.link = link
        self.vc = vc
        self.credits = credits
        self.flits: deque[Flit] = deque()
        self.packets: deque[Packet] = deque()
        if register:
            kernel.add_component(self)

    def submit(self, packet: Packet) -> None:
        self.packets.append(packet)
        self.wake()

    @property
    def idle(self) -> bool:
        return not self.flits and not self.packets

    def on_edge(self, tick: int) -> None:
        active = False
        if returned := self.link.take_credits(self.vc, tick):
            self.credits += returned
            active = True
        if not self.flits and self.packets:
            packet = self.packets.popleft()
            packet.inject_tick = tick
            self.flits.extend(packet.to_flits())
        if self.flits and self.credits > 0:
            self.link.send_flit(self.flits.popleft(), self.vc, tick)
            self.credits -= 1
        elif not active:
            self.sleep_until(self.link.credits[self.vc])


class VcFabricSink(ClockedComponent):
    """Drains a router's local port, returning credits on the flit's VC."""

    def __init__(self, kernel: SimKernel, name: str, link: VcCreditLink,
                 on_packet: Callable[[Packet, int], None],
                 register: bool = True):
        super().__init__(name, parity=0)
        self.link = link
        self.on_packet = on_packet
        self._assembly: dict[int, list[Flit]] = {}
        self.flits_received = 0
        if register:
            kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        tagged = self.link.take_flit(tick)
        credit_vc = -1
        if tagged is not None:
            flit, vc = tagged
            credit_vc = vc
            self.flits_received += 1
            self._kernel.emit("flit", flit)
            buffer = self._assembly.setdefault(flit.packet_id, [])
            buffer.append(flit)
            if flit.is_tail:
                del self._assembly[flit.packet_id]
                packet = Packet.from_flits(buffer)
                packet.eject_tick = tick
                self.on_packet(packet, tick)
                self._kernel.emit("packet", packet)
        # Write-on-change credit returns: one credit on the arriving
        # flit's VC, settle the rest once.
        settled = False
        for vc in range(self.link.n_vcs):
            if vc == credit_vc:
                self.link.send_credits(vc, 1, tick)
            elif self.link.settle_credit(vc, tick):
                settled = True
        if credit_vc < 0 and not settled:
            self.sleep_until(self.link.flit)
