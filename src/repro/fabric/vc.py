"""Back-compat aliases for the pre-unification virtual-channel stack.

Virtual-channel flow control used to live here as a parallel
implementation (``VcCreditLink``/``VcFabricRouter``/``VcFabricSource``/
``VcFabricSink``). The stacks are unified now: one
:class:`~repro.fabric.link.CreditLink` grows per-VC credit wires above
``n_vcs=1``, one :class:`~repro.fabric.router.FabricRouter` runs the
two-stage allocation pipeline (VC allocation + switch allocation, the
pluggable :mod:`repro.fabric.allocator` interface) when built with
``n_vcs >= 2``, and the shared endpoints in
:mod:`repro.fabric.endpoint` serve every VC count. This module keeps the
historical names importable as thin aliases; new code should use the
unified classes directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.fabric.allocator import Allocator
from repro.fabric.endpoint import FabricSink, FabricSource
from repro.fabric.link import CreditLink
from repro.fabric.router import FabricRouter
from repro.fabric.routing import VcCandidateFn
from repro.sim.kernel import SimKernel

__all__ = ["VcCreditLink", "VcFabricRouter", "VcFabricSource",
           "VcFabricSink"]

#: The unified link already speaks the historical VC signature
#: ``(kernel, name, n_vcs, segments=1, capacity=None)``.
VcCreditLink = CreditLink

#: The unified endpoints already speak the historical VC signatures.
VcFabricSource = FabricSource
VcFabricSink = FabricSink


class VcFabricRouter(FabricRouter):
    """The unified router under its historical VC name and signature."""

    def __init__(self, kernel: SimKernel, name: str, n_ports: int,
                 candidates: VcCandidateFn, n_vcs: int,
                 buffer_depth: int = 4,
                 port_names: Sequence[str] | None = None,
                 pipeline_depth: int = 1, register: bool = True,
                 allocator: Allocator | None = None):
        if n_vcs < 2:
            raise ConfigurationError("a VC router needs >= 2 VCs")
        super().__init__(kernel, name, n_ports, buffer_depth=buffer_depth,
                         port_names=port_names,
                         pipeline_depth=pipeline_depth, register=register,
                         n_vcs=n_vcs, candidates=candidates,
                         allocator=allocator)
