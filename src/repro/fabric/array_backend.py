"""Vectorized array execution backend for the credit fabrics.

``backend="array"`` lowers a built :class:`~repro.fabric.network
.CreditFabricNetwork` into struct-of-arrays numpy state — per-(router,
port, vc) FIFO occupancy rings of interned flit ids, head caches,
credit counters, wormhole locks / VC allocations, round-robin pointers —
and executes the whole fabric's commit + arbitrate + credit-return inner
loop as whole-network array operations, one step per clock edge. The
routers and endpoints are still built with their full state and wiring
(``register=False`` keeps them off the kernel schedule); one engine
component replaces them all.

**One lowering path.** :class:`ArrayEngine` mirrors the unified
:class:`~repro.fabric.router.FabricRouter`: every state array carries a
VC axis, and ``n_vcs=1`` is the wormhole degenerate case — the routing
table, the bubble rule, and the per-output wormhole locks replace the
VC-allocation stage, exactly as the dispatch router's single-VC edge
does. The two grant phases (:meth:`ArrayEngine._grants_single` /
:meth:`ArrayEngine._grants_vc`) are the array transcription of
``FabricRouter._edge_single`` / ``_edge_vc``; arrivals, sources, sinks,
and the scheduling plumbing are shared.

**Equivalence is the contract.** Every observable the dispatch backend
produces is reproduced exactly:

* delivered packets, delivery order, latencies, hop counts, and
  per-router statistics (``flits_forwarded``, allocator arbiter grant
  counts, FIFO/credit/lock state — written back by :meth:`sync_back`);
* ``kernel.tick`` — the engine is an ordinary registered component, so
  runs advance the clock identically and drains stop on the same tick;
* gating statistics — ``enabled`` edges are accumulated per router with
  the same definition (grant | arrival | VC allocation), totals use the
  same closed-form idle backfill as
  :class:`~repro.sim.component.GatedComponentMixin`;
* kernel events — with a subscriber attached, ``arbitration_grant``,
  ``credit_exhausted``, ``vc_allocated``, ``lock_acquire``,
  ``lock_release``, ``flit`` and ``packet`` fire edge-triggered in the
  dispatch backend's exact global order (routers node-ascending, then
  sinks node-ascending, each in its internal phase order), carrying the
  same always-suffixed ``vc``/``input_vc`` fields (0 on single-VC
  fabrics);
* signal probes — when any flit wire carries a probe, the engine enters
  *write-through* mode and drives the real link wires alongside its
  arrays, so :mod:`repro.telemetry` sees identical commits. Probed
  credit wires have no cheap write-through and raise
  :class:`~repro.errors.ConfigurationError` — loud, never silently
  wrong.

Links between routers are modelled as double-buffered id arrays: a value
produced at step ``t`` is consumed at step ``t + 2`` — exactly
:data:`~repro.fabric.link.LINK_LATENCY_TICKS` — so flit timing is
bit-identical to the tick-tagged wires.

When nothing is observed the engine implements
:class:`~repro.sim.batch.BatchComponent` and consumes whole tick windows
from :meth:`SimKernel.run_ticks` without per-tick kernel dispatch; with
subscribers or probes attached it declines the batch and steps tick by
tick so event and probe timing stay exact.

Not lowerable (the network validates and :func:`make_engine` re-checks):
pipelined routers (``pipeline_depth > 1``), segmented links, the
``weighted`` allocator (its windowed reservation counters have no array
transcription yet), and the tree fabrics' handshake pipeline.
``backend="auto"`` falls back to dispatch for those; ``backend="array"``
raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.clocking.gating import GatingStats
from repro.errors import ConfigurationError, RoutingError
from repro.fabric.routing import LOCAL
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.sim.batch import BatchComponent
from repro.sim.component import latest_parity_tick
from repro.sim.signal import Signal

if TYPE_CHECKING:
    from repro.fabric.network import CreditFabricNetwork

__all__ = ["make_engine", "ArrayEngine"]


def make_engine(net: "CreditFabricNetwork"):
    """Lower a built fabric into its vectorized engine component."""
    if net.pipeline_depth != 1 or any(link.segments != 1
                                      for link in net.links):
        raise ConfigurationError(
            "backend='array' does not support pipelined routers or "
            "segmented links; use backend='dispatch' (or 'auto' to "
            "fall back)"
        )
    if getattr(net, "allocator_name", "rr") == "weighted":
        raise ConfigurationError(
            "backend='array' has no lowering for the weighted "
            "allocator; use backend='dispatch' (or 'auto' to fall back)"
        )
    return ArrayEngine(net)


class _FlitStore:
    """Interning table: flit object <-> small integer id, with the hot
    per-flit fields (dest, head/tail) mirrored into numpy arrays."""

    def __init__(self) -> None:
        cap = 1024
        self.objs: list[Flit] = []
        self.dest = np.zeros(cap, dtype=np.int64)
        self.is_head = np.zeros(cap, dtype=bool)
        self.is_tail = np.zeros(cap, dtype=bool)

    def intern(self, flit: Flit) -> int:
        fid = len(self.objs)
        if fid == len(self.dest):
            grow = len(self.dest)
            self.dest = np.concatenate(
                [self.dest, np.zeros(grow, dtype=np.int64)])
            self.is_head = np.concatenate(
                [self.is_head, np.zeros(grow, dtype=bool)])
            self.is_tail = np.concatenate(
                [self.is_tail, np.zeros(grow, dtype=bool)])
        self.objs.append(flit)
        self.dest[fid] = flit.dest
        self.is_head[fid] = flit.is_head
        self.is_tail[fid] = flit.is_tail
        return fid


class _RouteProbe:
    """Duck-typed stand-in for a flit: route functions read only .dest."""

    __slots__ = ("dest",)

    def __init__(self, dest: int) -> None:
        self.dest = dest


class ArrayEngine(BatchComponent):
    """Whole-fabric vectorized execution of the unified credit routers.

    Credit/arrival handling, sources, and sinks are fully array-level in
    both regimes. ``n_vcs=1`` runs the wormhole grant phase (routing
    table, bubble rule, per-output locks); ``n_vcs >= 2`` runs two-stage
    allocation — switch allocation array-level, VC allocation
    scalar-sparse (only routers holding unallocated head flits, typically
    a handful per edge), replicating
    :meth:`FabricRouter._allocate_vcs` exactly, including the
    port-ascending, VC-descending grant walk and the policy candidate
    calls, which are memoised per (in_port, in_vc, dest[, src])."""

    def __init__(self, net: "CreditFabricNetwork") -> None:
        super().__init__(f"{net._node_prefix}.engine", parity=0)
        self.net = net
        self.kernel = net.kernel
        self._store = _FlitStore()
        self._quiet = False
        # Arrivals land after the grant/allocation phase of their step,
        # so a head they expose has not seen an arbitration pass yet.
        # This flag keeps the engine awake one more step for that pass;
        # without it a lone in-flight flit (single-flit packets between
        # bursts) would be declared quiet mid-route and never granted.
        self._fresh_heads = False
        self._write_through = False
        self._probe_epoch_seen = -1

        topo = net.topology
        self._R = R = topo.nodes
        self._P = P = topo.max_ports
        self._V = V = net.n_vcs
        self._iota = np.arange(P, dtype=np.int64)
        self._iota_pv = np.arange(P * V, dtype=np.int64)
        self._names = [router.name for router in net.routers]

        # Connectivity: for every (router, out port) the consuming
        # (router, in port); LOCAL out ports feed the node's sink. The
        # upstream map inverts it for credit returns.
        in_map: dict[int, tuple[int, int]] = {}
        out_map: dict[int, tuple[int, int]] = {}
        for r, router in enumerate(net.routers):
            for p, link in enumerate(router.in_links):
                if link is not None:
                    in_map[id(link)] = (r, p)
            for p, link in enumerate(router.out_links):
                if link is not None:
                    out_map[id(link)] = (r, p)
        self._conn_out = np.zeros((R, P), dtype=bool)
        self._conn_in = np.zeros((R, P), dtype=bool)
        self._dst_r = np.zeros((R, P), dtype=np.int64)
        self._dst_p = np.zeros((R, P), dtype=np.int64)
        self._up_r = np.zeros((R, P), dtype=np.int64)
        self._up_p = np.zeros((R, P), dtype=np.int64)
        for r, router in enumerate(net.routers):
            for p, link in enumerate(router.out_links):
                if link is None:
                    continue
                self._conn_out[r, p] = True
                consumer = in_map.get(id(link))
                if consumer is not None:
                    self._dst_r[r, p], self._dst_p[r, p] = consumer
                elif p != LOCAL or id(link) != id(net.sinks[r].link):
                    raise ConfigurationError(
                        "backend='array' cannot lower this fabric wiring: "
                        f"{router.name} output {router.port_name(p)} "
                        f"drives neither a router nor the node's sink"
                    )
            for p, link in enumerate(router.in_links):
                if link is None:
                    continue
                self._conn_in[r, p] = True
                producer = out_map.get(id(link))
                if producer is not None:
                    self._up_r[r, p], self._up_p[r, p] = producer
                elif p != LOCAL or id(link) != id(net.sources[r].link):
                    raise ConfigurationError(
                        "backend='array' cannot lower this fabric wiring: "
                        f"{router.name} input {router.port_name(p)} is "
                        f"driven by neither a router nor the node's source"
                    )

        # Per-router FIFO depths (per port; VCs of a port share one) and
        # the ring-buffer capacity.
        self._fifo_depth = np.zeros((R, P), dtype=np.int64)
        for r, router in enumerate(net.routers):
            self._fifo_depth[r] = router.fifo_depths
        self._C = C = max(2, int(self._fifo_depth.max()))

        # Per-(router, port, vc) state mirrors FabricRouter exactly —
        # the single-VC regime simply never indexes past vc 0.
        self._fifo_buf = np.full((R, P, V, C), -1, dtype=np.int64)
        self._fifo_start = np.zeros((R, P, V), dtype=np.int64)
        self._fifo_len = np.zeros((R, P, V), dtype=np.int64)
        self._head_fid = np.full((R, P, V), -1, dtype=np.int64)
        self._head_is_head = np.zeros((R, P, V), dtype=bool)
        self._credits = np.zeros((R, P, V), dtype=np.int64)
        self._starved = np.zeros((R, P, V), dtype=bool)
        # Switch-allocation arbiter state (the allocator's sa_arbiters):
        # flat input index in_port * V + in_vc, exactly the dispatch
        # round-robin at every VC count.
        self._sa_last = np.full((R, P), P * V - 1, dtype=np.int64)
        self._sa_grants = np.zeros((R, P), dtype=np.int64)
        self._sa_grant_counts = np.zeros((R, P, P * V), dtype=np.int64)

        if V == 1:
            # Wormhole regime: routing lowers to one table (route
            # functions are pure in flit.dest — the strategies guarantee
            # it), heads cache their output port, and per-output locks
            # replace the VC-allocation stage.
            self._route_tab = np.zeros((R, R), dtype=np.int64)
            for r, router in enumerate(net.routers):
                fn = router._route_fn
                row = self._route_tab[r]
                for d in range(R):
                    row[d] = LOCAL if d == r else fn(_RouteProbe(d))
            self._head_out = np.full((R, P), -1, dtype=np.int64)
            self._locks = np.full((R, P), -1, dtype=np.int64)
            # Bubble rule (ring-closing topologies, wormhole only).
            self._needs_bubble = net.routing.needs_bubble
            self._transit = np.zeros((P, P), dtype=bool)
            if self._needs_bubble:
                for in_p in range(P):
                    for out_p in range(P):
                        self._transit[in_p, out_p] = \
                            net.routing.ring_transit(in_p, out_p)
            for r, router in enumerate(net.routers):
                self._credits[r, :, 0] = router.credits
        else:
            # VC regime: the (out_port, out_vc) each input VC's packet
            # holds (-1: none), and the owning input VC per output VC
            # (the per-VC lock), plus the VC-allocation arbiters.
            self._alloc_out = np.full((R, P, V), -1, dtype=np.int64)
            self._alloc_vc = np.full((R, P, V), -1, dtype=np.int64)
            self._owner_in = np.full((R, P, V), -1, dtype=np.int64)
            self._owner_vc = np.full((R, P, V), -1, dtype=np.int64)
            self._va_last = np.full((R, P * V), P * V - 1, dtype=np.int64)
            self._va_grants = np.zeros((R, P * V), dtype=np.int64)
            self._va_grant_counts = np.zeros((R, P * V, P * V),
                                             dtype=np.int64)
            self._vcs_allocated = np.zeros(R, dtype=np.int64)
            # Routers whose VA inputs changed since their last walk (a
            # new head flit or a released output VC). A failed walk is
            # pure — no arbiter/event side effects in dispatch either —
            # so a router with unchanged inputs can skip re-walking.
            self._va_dirty = np.ones(R, dtype=bool)
            for r, router in enumerate(net.routers):
                self._credits[r] = router.credits
            #: Memoised policy candidates per router. Candidate functions
            #: are pure in (in_p, in_vc, dest) — plus flit.src when the
            #: policy routes priority flows, which key on (src, dest).
            self._cand_cache: list[dict] = [{} for _ in range(R)]
            self._key_src = bool(getattr(net.vc_policy,
                                         "priority_flows", None))

        self._inj_vc = np.asarray([src.vc for src in net.sources],
                                  dtype=np.int64)

        # Source state: contiguous interned-id window of the unpacked
        # packet, credit counter, host-submitted backlog flag.
        self._src_next = np.zeros(R, dtype=np.int64)
        self._src_end = np.zeros(R, dtype=np.int64)
        self._src_credits = np.asarray(
            [src.credits for src in net.sources], dtype=np.int64)
        self._has_pkts = np.asarray(
            [bool(src.packets) for src in net.sources], dtype=bool)

        # Gating: enabled edges accumulate here; totals are closed-form.
        self._edges_enabled = np.zeros(R, dtype=np.int64)
        self._flits_fwd = np.zeros(R, dtype=np.int64)

        # Buffered event replay (observed mode): per-router lists plus
        # one list for the sinks, flushed node-ascending each step.
        self._events: dict[int, list[tuple[str, dict]]] = {}
        self._sink_events: list[tuple[str, Any]] = []

        # Double-buffered links: produced at step t, consumed at t + 2.
        self._arrive = [np.full((R, P), -1, dtype=np.int64)
                        for _ in range(2)]
        self._arrive_vc = [np.zeros((R, P), dtype=np.int64)
                           for _ in range(2)]
        self._credit_in = [np.zeros((R, P, V), dtype=np.int64)
                           for _ in range(2)]
        self._sink_in = [np.full(R, -1, dtype=np.int64) for _ in range(2)]
        self._sink_vc = [np.zeros(R, dtype=np.int64) for _ in range(2)]
        self._src_credit_in = [np.zeros(R, dtype=np.int64)
                               for _ in range(2)]
        self._flip = 0

        self.kernel.add_component(self)

    # -- scheduling -----------------------------------------------------

    def on_submit(self, node: int) -> None:
        """A packet was submitted to ``node``'s source (host-side)."""
        self._has_pkts[node] = True
        self._quiet = False
        self.wake()

    def on_edge(self, tick: int) -> None:
        if self._quiet:
            if self.kernel.activity_driven:
                self.sleep_until()
            return
        self._step(tick)
        if self._is_quiet():
            self._quiet = True
            if self.kernel.activity_driven:
                self.sleep_until()

    def batch_ticks(self, window: int) -> int:
        if self._write_through or self.kernel._event_subs:
            return 0  # observed: per-tick dispatch keeps timing exact
        kernel = self.kernel
        consumed = 0
        while consumed < window:
            if kernel.tick % 2 == 0:
                if self._quiet:
                    break
                kernel.steps_executed += 1
                self._step(kernel.tick)
                if self._is_quiet():
                    self._quiet = True
                    kernel.tick += 1
                    consumed += 1
                    self.sleep_until()
                    break
            kernel.tick += 1
            consumed += 1
        return consumed

    def refresh_observers(self) -> None:
        """Re-scan link wires for probes (cached by the probe epoch).

        Probed flit wires switch the engine to write-through (it drives
        the real wires so probes fire identically to dispatch); probed
        credit wires are refused loudly — the engine never drives them.
        """
        epoch = Signal.probe_epoch
        if epoch == self._probe_epoch_seen:
            return
        self._probe_epoch_seen = epoch
        probed = False
        for link in self.net.links:
            if link.flit._probes:
                probed = True
            for wire in link.credits:
                if wire._probes:
                    raise ConfigurationError(
                        f"backend='array' cannot drive the probed credit "
                        f"wire {wire.name!r}; use backend='dispatch' for "
                        f"credit-wire probes"
                    )
        self._write_through = probed

    # -- observables ----------------------------------------------------

    def gating_stats(self) -> GatingStats:
        total = GatingStats()
        total.edges_total = self._R * self._edges_per_router()
        total.edges_enabled = int(self._edges_enabled.sum())
        return total

    def _edges_per_router(self) -> int:
        latest = latest_parity_tick(self.kernel.tick, 0)
        return latest // 2 + 1 if latest >= 0 else 0

    def _sync_back_sources(self) -> None:
        store = self._store
        for n, src in enumerate(self.net.sources):
            src.credits = int(self._src_credits[n])
            src.flits.clear()
            src.flits.extend(store.objs[i]
                             for i in range(self._src_next[n],
                                            self._src_end[n]))

    def _replay_events(self) -> None:
        emit = self.kernel.emit
        for r in sorted(self._events):
            for name, payload in self._events[r]:
                emit(name, payload)
        self._events.clear()
        for name, payload in self._sink_events:
            emit(name, payload)
        self._sink_events.clear()

    def _event(self, r: int, name: str, payload: dict) -> None:
        self._events.setdefault(r, []).append((name, payload))

    # -- VC allocation (scalar-sparse, VC regime only) -------------------

    def _allocate_vcs(self, rs: np.ndarray, ps: np.ndarray, vs: np.ndarray,
                      observed: bool, enabled: np.ndarray) -> None:
        store = self._store
        V = self._V
        size = self._P * V
        fids = self._head_fid[rs, ps, vs]
        heads = store.is_head[fids]
        if not heads.all():
            j = int(np.nonzero(~heads)[0][0])
            router = self.net.routers[int(rs[j])]
            raise RoutingError(
                f"{router.name}: body flit {store.objs[int(fids[j])]} "
                f"without an allocation on "
                f"{router.port_name(int(ps[j]))} vc{int(vs[j])}"
            )
        dests = store.dest[fids]
        # ``rs`` comes from a row-major nonzero scan, so equal routers are
        # contiguous — walk the runs instead of re-scanning per router.
        bounds = np.flatnonzero(rs[1:] != rs[:-1]) + 1
        starts = [0, *bounds.tolist()]
        ends = [*bounds.tolist(), rs.size]
        for s, e in zip(starts, ends):
            r = int(rs[s])
            cache = self._cand_cache[r]
            owner_free = (self._owner_in[r] < 0).tolist()
            want: dict[tuple[int, int], list[int]] = {}
            for i in range(s, e):
                in_p, in_vc = int(ps[i]), int(vs[i])
                key = (in_p, in_vc, int(dests[i]))
                if self._key_src:
                    key = key + (store.objs[int(fids[i])].src,)
                cand = cache.get(key)
                if cand is None:
                    router = self.net.routers[r]
                    preferred, fallback = router._candidates(
                        in_p, in_vc, store.objs[int(fids[i])])
                    # The connectivity filter is static — bake it in.
                    cand = (
                        tuple(p for p in preferred
                              if self._conn_out[r, p[0]]),
                        tuple(p for p in fallback
                              if self._conn_out[r, p[0]]),
                    )
                    cache[key] = cand
                requested = [pair for pair in cand[0]
                             if owner_free[pair[0]][pair[1]]]
                if not requested:
                    requested = [pair for pair in cand[1]
                                 if owner_free[pair[0]][pair[1]]]
                flat = in_p * V + in_vc
                for pair in requested:
                    want.setdefault(pair, []).append(flat)
            if not want:
                continue
            allocated: set[int] = set()
            # Same walk order as dispatch: out port ascending, VC
            # descending — restricted to pairs actually requested.
            for out_p, out_vc in sorted(want,
                                        key=lambda t: (t[0], -t[1])):
                live = [f for f in want[out_p, out_vc]
                        if f not in allocated]
                if not live:
                    continue
                arb = out_p * V + out_vc
                last = int(self._va_last[r, arb])
                winner = min(live, key=lambda f: (f - last - 1) % size)
                self._va_last[r, arb] = winner
                self._va_grants[r, arb] += 1
                self._va_grant_counts[r, arb, winner] += 1
                in_p, in_vc = divmod(winner, V)
                self._owner_in[r, out_p, out_vc] = in_p
                self._owner_vc[r, out_p, out_vc] = in_vc
                self._alloc_out[r, in_p, in_vc] = out_p
                self._alloc_vc[r, in_p, in_vc] = out_vc
                allocated.add(winner)
                self._vcs_allocated[r] += 1
                enabled[r] = True
                # A grant takes an output VC, which can reroute another
                # pending head (preferred -> fallback) next edge.
                self._va_dirty[r] = True
                if observed:
                    head = store.objs[int(self._head_fid[r, in_p,
                                                         in_vc])]
                    self._event(r, "vc_allocated", {
                        "router": self._names[r], "output": out_p,
                        "vc": out_vc, "input": in_p,
                        "input_vc": in_vc, "flit": head,
                    })
                    if not head.is_tail:
                        self._event(r, "lock_acquire", {
                            "router": self._names[r], "output": out_p,
                            "vc": out_vc, "input": in_p,
                            "input_vc": in_vc,
                            "packet_id": head.packet_id,
                        })

    # -- the switch-allocation phase, single-VC (wormhole) regime --------

    def _grants_single(self, tick: int, observed: bool, wt: bool,
                       enabled: np.ndarray, arrive_nxt: np.ndarray,
                       credit_nxt: np.ndarray, sink_nxt: np.ndarray,
                       srccr_nxt: np.ndarray) -> None:
        P, C = self._P, self._C
        store = self._store
        # Views into the vc-0 plane: the single-VC regime's whole state.
        head_fid = self._head_fid[:, :, 0]
        head_is_head = self._head_is_head[:, :, 0]
        fifo_buf = self._fifo_buf[:, :, 0, :]
        fifo_start = self._fifo_start[:, :, 0]
        fifo_len = self._fifo_len[:, :, 0]
        starved = self._starved[:, :, 0]
        # Per output port (sequential, like the dispatch router's
        # out-port loop — a pop at port A exposes a new head to port B
        # the same edge), vectorized across every router.
        for out_p in range(P):
            conn = self._conn_out[:, out_p]
            credits_col = self._credits[:, out_p, 0]
            base = (head_fid >= 0) & (self._head_out == out_p)
            lock = self._locks[:, out_p]
            locked = lock >= 0
            if self._needs_bubble:
                free_req = head_is_head & (
                    self._transit[:, out_p][None, :]
                    | (credits_col >= 2)[:, None])
            else:
                free_req = head_is_head
            in_is_lock = self._iota[None, :] == lock[:, None]
            req = base & np.where(locked[:, None], in_is_lock, free_req)

            if observed:
                # Starvation scan before the grant, exactly as dispatch
                # handles the credits<=0 continue: candidate = first
                # buffered head wanting this output (lock honoured, no
                # head/bubble filter).
                starv = conn & (credits_col <= 0) & ~starved[:, out_p]
                if starv.any():
                    s_req = base & np.where(locked[:, None], in_is_lock,
                                            True)
                    cand = starv & s_req.any(axis=1)
                    for r in np.nonzero(cand)[0]:
                        starved[r, out_p] = True
                        self._event(int(r), "credit_exhausted", {
                            "router": self._names[r], "output": out_p,
                            "vc": 0, "input": int(np.argmax(s_req[r])),
                            "input_vc": 0,
                        })

            grantable = conn & (credits_col > 0) & req.any(axis=1)
            rows = np.nonzero(grantable)[0]
            if rows.size == 0:
                continue
            key = (self._iota[None, :]
                   - self._sa_last[rows, out_p][:, None] - 1) % P
            key = np.where(req[rows], key, P)
            win = np.argmin(key, axis=1)
            self._sa_last[rows, out_p] = win
            self._sa_grants[rows, out_p] += 1
            self._sa_grant_counts[rows, out_p, win] += 1
            fid = head_fid[rows, win]
            # Pop + head refresh.
            start = (fifo_start[rows, win] + 1) % C
            length = fifo_len[rows, win] - 1
            fifo_start[rows, win] = start
            fifo_len[rows, win] = length
            refill = length > 0
            new_fid = np.where(refill, fifo_buf[rows, win, start], -1)
            head_fid[rows, win] = new_fid
            safe = new_fid.clip(min=0)
            self._head_out[rows, win] = np.where(
                refill, self._route_tab[rows, store.dest[safe]], -1)
            head_is_head[rows, win] = np.where(
                refill, store.is_head[safe], False)
            # Credit return upstream (LOCAL inputs credit the source).
            local_in = win == LOCAL
            other = ~local_in
            credit_nxt[self._up_r[rows[other], win[other]],
                       self._up_p[rows[other], win[other]], 0] += 1
            srccr_nxt[rows[local_in]] += 1
            # Launch toward the consumer (LOCAL outputs feed the sink).
            if out_p == LOCAL:
                sink_nxt[rows] = fid
            else:
                arrive_nxt[self._dst_r[rows, out_p],
                           self._dst_p[rows, out_p]] = fid
            credits_col[rows] -= 1
            self._flits_fwd[rows] += 1
            enabled[rows] = True
            # Wormhole lock transitions.
            f_tail = store.is_tail[fid]
            f_head = store.is_head[fid]
            self._locks[rows, out_p] = np.where(
                f_tail, -1, np.where(f_head, win, self._locks[rows, out_p]))
            if observed or wt:
                for i, r in enumerate(rows):
                    r = int(r)
                    flit = store.objs[int(fid[i])]
                    if wt:
                        self.net.routers[r].out_links[out_p].send_flit(
                            flit, 0, tick)
                    if observed:
                        self._event(r, "arbitration_grant", {
                            "router": self._names[r], "output": out_p,
                            "vc": 0, "input": int(win[i]), "input_vc": 0,
                            "flit": flit,
                        })
                        if flit.is_tail:
                            if not flit.is_head:
                                self._event(r, "lock_release", {
                                    "router": self._names[r],
                                    "output": out_p, "vc": 0,
                                    "input": int(win[i]), "input_vc": 0,
                                    "packet_id": flit.packet_id,
                                })
                        elif flit.is_head:
                            self._event(r, "lock_acquire", {
                                "router": self._names[r], "output": out_p,
                                "vc": 0, "input": int(win[i]),
                                "input_vc": 0,
                                "packet_id": flit.packet_id,
                            })

    # -- the switch-allocation phase, VC regime --------------------------

    def _grants_vc(self, tick: int, observed: bool, wt: bool,
                   enabled: np.ndarray, arrive_nxt: np.ndarray,
                   arrvc_nxt: np.ndarray, credit_nxt: np.ndarray,
                   sink_nxt: np.ndarray, sinkvc_nxt: np.ndarray,
                   srccr_nxt: np.ndarray) -> None:
        R, P, C, V = self._R, self._P, self._C, self._V
        store = self._store
        head_fid = self._head_fid
        r_ix = np.arange(R)[:, None, None]
        # Per output port (sequential rounds), vectorized across
        # routers; one flit per output and per input port per edge (the
        # crossbar constraint).
        port_used = np.zeros((R, P), dtype=bool)
        # Stale entries (tail releases during earlier rounds) are masked
        # out by ``port_used``/``alloc_out``, so hoist the gather index.
        av = self._alloc_vc.clip(min=0)
        head_valid = head_fid >= 0
        for out_p in range(P):
            conn = self._conn_out[:, out_p]
            mask = ((self._alloc_out == out_p) & head_valid
                    & ~port_used[:, :, None] & conn[:, None, None])
            if not mask.any():
                continue
            # Credits of each input VC's allocated output VC.
            cred = self._credits[:, out_p, :][r_ix, av]
            ok = mask & (cred > 0)
            if observed:
                blocked = mask & (cred <= 0)
                for r, in_p, in_vc in zip(*np.nonzero(blocked)):
                    r = int(r)
                    b_vc = int(self._alloc_vc[r, in_p, in_vc])
                    if self._starved[r, out_p, b_vc]:
                        continue
                    self._starved[r, out_p, b_vc] = True
                    self._event(r, "credit_exhausted", {
                        "router": self._names[r], "output": out_p,
                        "vc": b_vc,
                        "input": int(self._owner_in[r, out_p, b_vc]),
                        "input_vc": int(self._owner_vc[r, out_p, b_vc]),
                    })
            req = ok.reshape(R, P * V)
            rows = np.nonzero(req.any(axis=1))[0]
            if rows.size == 0:
                continue
            key = (self._iota_pv[None, :]
                   - self._sa_last[rows, out_p][:, None] - 1) % (P * V)
            key = np.where(req[rows], key, P * V)
            win = np.argmin(key, axis=1)
            self._sa_last[rows, out_p] = win
            self._sa_grants[rows, out_p] += 1
            self._sa_grant_counts[rows, out_p, win] += 1
            in_p, in_vc = np.divmod(win, V)
            out_vc = self._alloc_vc[rows, in_p, in_vc]
            fid = head_fid[rows, in_p, in_vc]
            # Pop + head refresh.
            start = (self._fifo_start[rows, in_p, in_vc] + 1) % C
            length = self._fifo_len[rows, in_p, in_vc] - 1
            self._fifo_start[rows, in_p, in_vc] = start
            self._fifo_len[rows, in_p, in_vc] = length
            refill = length > 0
            new_fid = np.where(refill,
                               self._fifo_buf[rows, in_p, in_vc, start], -1)
            head_fid[rows, in_p, in_vc] = new_fid
            self._head_is_head[rows, in_p, in_vc] = np.where(
                refill, store.is_head[new_fid.clip(min=0)], False)
            # Credit return upstream on the input VC.
            local_in = in_p == LOCAL
            other = ~local_in
            credit_nxt[self._up_r[rows[other], in_p[other]],
                       self._up_p[rows[other], in_p[other]],
                       in_vc[other]] += 1
            srccr_nxt[rows[local_in & (in_vc == self._inj_vc[rows])]] += 1
            # Launch toward the consumer, VC-tagged.
            if out_p == LOCAL:
                sink_nxt[rows] = fid
                sinkvc_nxt[rows] = out_vc
            else:
                dst_r = self._dst_r[rows, out_p]
                dst_p = self._dst_p[rows, out_p]
                arrive_nxt[dst_r, dst_p] = fid
                arrvc_nxt[dst_r, dst_p] = out_vc
            self._credits[rows, out_p, out_vc] -= 1
            self._flits_fwd[rows] += 1
            port_used[rows, in_p] = True
            enabled[rows] = True
            # Tail releases the per-VC lock and the allocation.
            f_tail = store.is_tail[fid]
            tr = rows[f_tail]
            self._owner_in[tr, out_p, out_vc[f_tail]] = -1
            self._owner_vc[tr, out_p, out_vc[f_tail]] = -1
            self._alloc_out[tr, in_p[f_tail], in_vc[f_tail]] = -1
            self._alloc_vc[tr, in_p[f_tail], in_vc[f_tail]] = -1
            self._va_dirty[tr] = True
            if observed or wt:
                for i, r in enumerate(rows):
                    r = int(r)
                    flit = store.objs[int(fid[i])]
                    if wt:
                        self.net.routers[r].out_links[out_p].send_flit(
                            flit, int(out_vc[i]), tick)
                    if observed:
                        self._event(r, "arbitration_grant", {
                            "router": self._names[r], "output": out_p,
                            "vc": int(out_vc[i]), "input": int(in_p[i]),
                            "input_vc": int(in_vc[i]), "flit": flit,
                        })
                        if flit.is_tail and not flit.is_head:
                            self._event(r, "lock_release", {
                                "router": self._names[r], "output": out_p,
                                "vc": int(out_vc[i]), "input": int(in_p[i]),
                                "input_vc": int(in_vc[i]),
                                "packet_id": flit.packet_id,
                            })

    # -- one clock edge --------------------------------------------------

    def _step(self, tick: int) -> None:
        R, P, C, V = self._R, self._P, self._C, self._V
        self._fresh_heads = False
        k = self._flip
        arrive_cur, arrive_nxt = self._arrive[k], self._arrive[1 - k]
        arrvc_cur, arrvc_nxt = self._arrive_vc[k], self._arrive_vc[1 - k]
        credit_cur, credit_nxt = self._credit_in[k], self._credit_in[1 - k]
        sink_cur, sink_nxt = self._sink_in[k], self._sink_in[1 - k]
        sinkvc_cur, sinkvc_nxt = self._sink_vc[k], self._sink_vc[1 - k]
        srccr_cur, srccr_nxt = (self._src_credit_in[k],
                                self._src_credit_in[1 - k])
        observed = bool(self.kernel._event_subs)
        wt = self._write_through
        store = self._store
        head_fid = self._head_fid
        enabled = np.zeros(R, dtype=bool)

        # 1. Credit returns end starvation episodes.
        np.add(self._credits, credit_cur, out=self._credits)
        self._starved &= credit_cur == 0

        # 2. VC allocation (VC regime), only where head flits wait
        # unallocated — and only in routers whose VA inputs changed.
        if V > 1:
            pending = ((head_fid >= 0) & (self._alloc_out < 0)
                       & self._va_dirty[:, None, None])
            if pending.any():
                rs, ps, vs = np.nonzero(pending)
                self._va_dirty[rs] = False
                self._allocate_vcs(rs, ps, vs, observed, enabled)

        # 3. Switch allocation + traversal, per regime.
        if V == 1:
            self._grants_single(tick, observed, wt, enabled, arrive_nxt,
                                credit_nxt, sink_nxt, srccr_nxt)
        else:
            self._grants_vc(tick, observed, wt, enabled, arrive_nxt,
                            arrvc_nxt, credit_nxt, sink_nxt, sinkvc_nxt,
                            srccr_nxt)

        # 4. Arrivals into the per-VC FIFOs (credit scheme guarantees
        # space; violations raise in the dispatch router's scan order).
        amask = arrive_cur >= 0
        if amask.any():
            rr, pp = np.nonzero(amask)
            vv = arrvc_cur[rr, pp]
            full = self._fifo_len[rr, pp, vv] >= self._fifo_depth[rr, pp]
            if full.any():
                j = int(np.nonzero(full)[0][0])
                router = self.net.routers[int(rr[j])]
                where = router.port_name(int(pp[j]))
                if V > 1:
                    where += f" vc{int(vv[j])}"
                raise RoutingError(f"{router.name}: FIFO overflow on "
                                   f"{where} (credit violation)")
            fids = arrive_cur[rr, pp]
            slot = (self._fifo_start[rr, pp, vv]
                    + self._fifo_len[rr, pp, vv]) % C
            self._fifo_buf[rr, pp, vv, slot] = fids
            was_empty = self._fifo_len[rr, pp, vv] == 0
            self._fifo_len[rr, pp, vv] += 1
            enabled[rr] = True
            er, ep, ev = rr[was_empty], pp[was_empty], vv[was_empty]
            ef = fids[was_empty]
            head_fid[er, ep, ev] = ef
            self._head_is_head[er, ep, ev] = store.is_head[ef]
            if V == 1:
                self._head_out[er, ep] = self._route_tab[er, store.dest[ef]]
            else:
                self._va_dirty[er] = True
            self._fresh_heads = bool(er.size)

        # 5. Sources: collect credits, unpack at most one packet per
        # edge, inject at most one flit per edge under credits (on the
        # policy's injection VC — 0 on single-VC fabrics).
        np.add(self._src_credits, srccr_cur, out=self._src_credits)
        if self._has_pkts.any():
            for n in np.nonzero((self._src_next >= self._src_end)
                                & self._has_pkts)[0]:
                n = int(n)
                src = self.net.sources[n]
                packet = src.packets.popleft()
                if not src.packets:
                    self._has_pkts[n] = False
                packet.inject_tick = tick
                start = len(store.objs)
                for flit in packet.to_flits():
                    store.intern(flit)
                self._src_next[n] = start
                self._src_end[n] = len(store.objs)
        send = (self._src_next < self._src_end) & (self._src_credits > 0)
        sn = np.nonzero(send)[0]
        if sn.size:
            arrive_nxt[sn, LOCAL] = self._src_next[sn]
            arrvc_nxt[sn, LOCAL] = self._inj_vc[sn]
            if wt:
                for n in sn:
                    n = int(n)
                    self.net.sources[n].link.send_flit(
                        store.objs[int(self._src_next[n])],
                        int(self._inj_vc[n]), tick)
            self._src_next[sn] += 1
            self._src_credits[sn] -= 1

        # 6. Sinks: drain, reassemble, deliver; credit the arriving VC.
        for n in np.nonzero(sink_cur >= 0)[0]:
            n = int(n)
            flit = store.objs[int(sink_cur[n])]
            sink = self.net.sinks[n]
            sink.flits_received += 1
            if observed:
                self._sink_events.append(("flit", flit))
            buffer = sink._assembly.setdefault(flit.packet_id, [])
            buffer.append(flit)
            if flit.is_tail:
                del sink._assembly[flit.packet_id]
                packet = Packet.from_flits(buffer)
                packet.eject_tick = tick
                sink.on_packet(packet, tick)
                if observed:
                    self._sink_events.append(("packet", packet))
            credit_nxt[n, LOCAL, int(sinkvc_cur[n])] += 1

        if observed:
            self._replay_events()
        np.add(self._edges_enabled, enabled, out=self._edges_enabled)

        # Recycle the consumed buffers as the next production targets.
        arrive_cur.fill(-1)
        arrvc_cur.fill(0)
        credit_cur.fill(0)
        sink_cur.fill(-1)
        sinkvc_cur.fill(0)
        srccr_cur.fill(0)
        self._flip = 1 - k

    def _is_quiet(self) -> bool:
        # With every link buffer empty, no source backlog, and no head
        # still owed its first arbitration pass (_fresh_heads), the next
        # edge is a fixed point: grants need credits or heads that only
        # in-flight traffic can change. (Buffered-but-blocked flits are
        # exactly the dispatch routers' sleep-with-buffered-flits case.)
        k = self._flip
        return not (self._fresh_heads
                    or (self._arrive[k] >= 0).any()
                    or self._credit_in[k].any()
                    or (self._sink_in[k] >= 0).any()
                    or self._src_credit_in[k].any()
                    or (self._src_next < self._src_end).any()
                    or self._has_pkts.any())

    def sync_back(self) -> None:
        """Write the array state back into the (unscheduled) routers and
        endpoints so post-run inspection sees dispatch-identical state."""
        store, C, V = self._store, self._C, self._V
        per_router = self._edges_per_router()
        for r, router in enumerate(self.net.routers):
            for p in range(self._P):
                if V == 1:
                    fifo = router.fifos[p]
                    fifo.clear()
                    start = int(self._fifo_start[r, p, 0])
                    for i in range(int(self._fifo_len[r, p, 0])):
                        fifo.append(store.objs[int(
                            self._fifo_buf[r, p, 0, (start + i) % C])])
                    router.credits[p] = int(self._credits[r, p, 0])
                    lock = int(self._locks[r, p])
                    router.locks[p] = None if lock < 0 else lock
                    router._starved[p] = bool(self._starved[r, p, 0])
                else:
                    for vc in range(V):
                        fifo = router.fifos[p][vc]
                        fifo.clear()
                        start = int(self._fifo_start[r, p, vc])
                        for i in range(int(self._fifo_len[r, p, vc])):
                            fifo.append(store.objs[int(
                                self._fifo_buf[r, p, vc, (start + i) % C])])
                        router.credits[p][vc] = int(self._credits[r, p, vc])
                        owner = int(self._owner_in[r, p, vc])
                        router.vc_owner[p][vc] = (
                            None if owner < 0
                            else (owner, int(self._owner_vc[r, p, vc])))
                        alloc = int(self._alloc_out[r, p, vc])
                        router.allocation[p][vc] = (
                            None if alloc < 0
                            else (alloc, int(self._alloc_vc[r, p, vc])))
                        router._starved[p][vc] = bool(
                            self._starved[r, p, vc])
                sa = router.sa_arbiters[p]
                sa._last = int(self._sa_last[r, p])
                sa.grants = int(self._sa_grants[r, p])
                sa.grant_counts = [int(c)
                                   for c in self._sa_grant_counts[r, p]]
            if V > 1:
                for a in range(self._P * V):
                    va = router.va_arbiters[divmod(a, V)]
                    va._last = int(self._va_last[r, a])
                    va.grants = int(self._va_grants[r, a])
                    va.grant_counts = [int(c)
                                       for c in self._va_grant_counts[r, a]]
                router.vcs_allocated = int(self._vcs_allocated[r])
            router.flits_forwarded = int(self._flits_fwd[r])
            router._gating.edges_total = per_router
            router._gating.edges_enabled = int(self._edges_enabled[r])
        self._sync_back_sources()


#: Back-compat aliases for the pre-unification engine names.
WormholeArrayEngine = ArrayEngine
VcArrayEngine = ArrayEngine
