"""Generic assembly of credit-based fabrics.

:class:`CreditFabricNetwork` builds a complete runnable network from a
structure description (:mod:`repro.fabric.topologies`) plus a routing
strategy (:mod:`repro.fabric.routing`): one :class:`FabricRouter` per
node, two directed :class:`CreditLink` wires per neighbour pair, and a
:class:`FabricSource`/:class:`FabricSink` pair on every local port. The
run-time API (``send`` / ``run_ticks`` / ``run_cycles`` / ``drain`` /
``stats`` / ``gating_stats``) matches :class:`~repro.noc.network
.ICNoCNetwork`, so every fabric runs through the same sweep engine,
saturation searches, and CLI.

Build order is deterministic — routers in node order, links in the
topology's ``links()`` order, local ports in node order — which fixes the
kernel's component and signal registration order and therefore makes the
activity-driven fast path bit-identical to the naive reference loop for
every fabric assembled here.

**Pipelining knobs.** The config may carry ``pipeline_depth`` (staged
routers, default 1), ``segment_links`` (floorplan-driven link
segmentation at ``max_segment_mm``, default off), and ``credit_sizing``
(``"auto"`` grows FIFOs/credit loops to the ``pipeline_depth +
2 * segments`` round trip; ``"strict"`` demands ``buffer_depth`` already
covers it and raises :class:`~repro.errors.ConfigurationError` at build
time otherwise — a too-small credit loop throttles or wedges silently,
so it is a build error, never a run-time surprise). With the defaults
every link keeps the historical single-segment, default-capacity shape
and the build is bit-identical to pre-knob versions.

The concrete wrap fabrics (:class:`TorusNetwork`, :class:`RingNetwork`)
are registry entries; :class:`~repro.mesh.network.MeshNetwork` is the
same machinery under its historical name and module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.clocking.gating import GatingStats
from repro.errors import ConfigurationError, TopologyError
from repro.fabric.allocator import make_allocator
from repro.fabric.endpoint import FabricSink, FabricSource
from repro.fabric.link import CreditLink
from repro.fabric.router import FabricRouter
from repro.fabric.routing import (
    LOCAL,
    PORT_NAMES,
    RING_PORT_NAMES,
    EscapeVcAdaptive,
    RingDatelineVc,
    RingRouting,
    RoutingStrategy,
    TorusDatelineVc,
    TorusXYRouting,
    VcPolicy,
)
from repro.fabric.topologies import RingTopology, TorusTopology, square_side
from repro.noc.floorplan import (
    LOCAL_PORT,
    Floorplan,
    grid_fabric_floorplan,
    ring_fabric_floorplan,
    segment_count,
)
from repro.noc.packet import Packet
from repro.noc.stats import NetworkStats
from repro.sim.kernel import SimKernel
from repro.tech.technology import TECH_90NM
from repro.timing.frequency import (
    pipeline_max_frequency,
    router_max_frequency,
)

if TYPE_CHECKING:
    from repro.fabric.registry import FabricConfig


class CreditFabricNetwork:
    """A built, runnable credit-based fabric with the shared run-time API.

    ``config`` supplies ``buffer_depth`` and ``activity_driven`` (both
    :class:`~repro.fabric.registry.FabricConfig` and
    :class:`~repro.mesh.network.MeshConfig` qualify); ``topology``
    supplies the structure, ``routing`` the per-node route functions.
    """

    def __init__(self, config, topology, routing: RoutingStrategy,
                 kernel: SimKernel | None = None, node_prefix: str = "m",
                 port_names: tuple[str, ...] | None = None,
                 vc_policy: VcPolicy | None = None):
        self.config = config
        self.topology = topology
        self.routing = routing
        self.vc_policy = vc_policy
        self.vc_enabled = (getattr(config, "flow_control", "wormhole")
                           == "vc")
        if self.vc_enabled and vc_policy is None:
            raise ConfigurationError(
                "flow_control='vc' needs a VC-assignment policy"
            )
        if kernel is not None and \
                kernel.activity_driven != config.activity_driven:
            raise ConfigurationError(
                "provided kernel's activity_driven flag contradicts the "
                "network config"
            )
        self.kernel = kernel if kernel is not None \
            else SimKernel(activity_driven=config.activity_driven)
        # Allocation policy: every router gets a fresh allocator instance
        # of this flavour (arbitration state is per router).
        self.allocator_name = getattr(config, "allocator", "rr")
        self.reservations = tuple(getattr(config, "reservations", ()))
        self.pipeline_depth = getattr(config, "pipeline_depth", 1)
        self.segment_links = getattr(config, "segment_links", False)
        self.credit_sizing = getattr(config, "credit_sizing", "auto")
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        if self.credit_sizing not in ("auto", "strict"):
            raise ConfigurationError(
                f"credit_sizing must be 'auto' or 'strict', "
                f"got {self.credit_sizing!r}"
            )
        # Execution backend: "dispatch" fires each router/endpoint as its
        # own kernel component; "array" lowers the whole fabric into one
        # vectorized engine (repro.fabric.array_backend); "auto" picks
        # "array" whenever the build is lowerable. Requesting "array" for
        # an un-lowerable build is a loud error, never a silent fallback.
        backend = getattr(config, "backend", "dispatch")
        if backend not in ("dispatch", "array", "auto"):
            raise ConfigurationError(
                f"backend must be 'dispatch', 'array' or 'auto', "
                f"got {backend!r}"
            )
        lowerable = (self.pipeline_depth == 1 and not self.segment_links
                     and self.allocator_name != "weighted")
        if backend == "auto":
            backend = "array" if lowerable else "dispatch"
        elif backend == "array" and not lowerable:
            raise ConfigurationError(
                "backend='array' does not support pipelined routers "
                "(pipeline_depth > 1), segmented links, or the weighted "
                "allocator; use backend='dispatch' (or 'auto' to fall "
                "back)"
            )
        self.backend = backend
        self.engine = None
        self.stats = NetworkStats()
        self.routers: list[FabricRouter] = []
        self.sources: list[FabricSource] = []
        self.sinks: list[FabricSink] = []
        self.links: list[CreditLink] = []
        self.delivered: list[Packet] = []
        self._inflight: dict[int, Packet] = {}
        self._handlers: dict[int, Callable[[Packet, int], None]] = {}
        self._node_prefix = node_prefix
        self._port_names = port_names
        self._floorplan: Floorplan | None = None
        # Under the array backend, routers and endpoints are built with
        # their full state but left unregistered: the engine executes
        # their semantics vectorized and is the only scheduled component.
        self._register_components = backend != "array"
        self._build()
        if backend == "array":
            from repro.fabric.array_backend import make_engine
            self.engine = make_engine(self)

    # -- construction ---------------------------------------------------

    @property
    def n_vcs(self) -> int:
        return getattr(self.config, "n_vcs", 2) if self.vc_enabled else 1

    def _make_router(self, node: int):
        # One construction path for both regimes: n_vcs picks the
        # degenerate (wormhole) or VC shape inside the unified router,
        # and every router gets its own allocator instance.
        vc = self.vc_enabled
        return FabricRouter(
            self.kernel, f"{self._node_prefix}{node}",
            n_ports=self.topology.max_ports,
            route=None if vc else self.routing.for_node(node),
            candidates=self.vc_policy.for_node(node) if vc else None,
            n_vcs=self.n_vcs,
            buffer_depth=self.config.buffer_depth,
            ring_transit=self.routing,
            port_names=self._port_names,
            pipeline_depth=self.pipeline_depth,
            register=self._register_components,
            allocator=make_allocator(self.allocator_name,
                                     self.reservations),
        )

    def _link_segments(self, node: int, port: int) -> int:
        """Pipeline segments for the link driven at (node, port): 1 when
        segmentation is off, the floorplan-derived count otherwise."""
        if not self.segment_links:
            return 1
        length = self.floorplan.link_length(node, port)
        return segment_count(length,
                             getattr(self.config, "max_segment_mm", 1.25))

    def _link_capacity(self, segments: int) -> int | None:
        """Consumer FIFO depth behind a link, or None for the default.

        A credit loop spans ``pipeline_depth + 2 * segments`` cycles
        (router stages + wire out + credit back), so streaming at one
        flit per cycle needs that many credits. The historical shape
        (depth 1, one segment) is left untouched so default builds stay
        bit-identical; otherwise ``auto`` sizing grows the FIFO and
        ``strict`` demands buffer_depth already covers the loop.
        """
        if self.pipeline_depth == 1 and segments == 1:
            return None
        required = self.pipeline_depth + 2 * segments
        if self.credit_sizing == "strict" and \
                self.config.buffer_depth < required:
            raise ConfigurationError(
                f"credit loop under-buffered: pipeline_depth "
                f"({self.pipeline_depth}) + 2 x segments ({segments}) "
                f"= {required} flits in flight per round trip, but "
                f"buffer_depth is {self.config.buffer_depth}; raise "
                f"buffer_depth or use credit_sizing='auto'"
            )
        return max(self.config.buffer_depth, required)

    def _make_link(self, name: str, segments: int = 1):
        capacity = self._link_capacity(segments)
        link = CreditLink(self.kernel, name, self.n_vcs,
                          segments=segments, capacity=capacity)
        self.links.append(link)
        return link

    def _build(self) -> None:
        prefix = self._node_prefix
        for node in range(self.topology.nodes):
            self.routers.append(self._make_router(node))
        # Router-to-router links (two directed links per neighbour pair).
        for a, a_port, b, b_port in self.topology.links():
            self._connect(a, a_port, b, b_port)
        # Local ports.
        for node in range(self.topology.nodes):
            router = self.routers[node]
            stub = self._link_segments(node, LOCAL_PORT)
            inject = self._make_link(f"{prefix}{node}.inj", segments=stub)
            eject = self._make_link(f"{prefix}{node}.ej", segments=stub)
            router.connect(LOCAL, inject, eject)
            hook = self._make_delivery_hook(node)
            src_credits = (inject.capacity if inject.capacity is not None
                           else self.config.buffer_depth)
            register = self._register_components
            source = FabricSource(
                self.kernel, f"{prefix}{node}.src", inject,
                credits=src_credits,
                vc=(self.vc_policy.injection_vc(node)
                    if self.vc_enabled else 0),
                register=register)
            sink = FabricSink(self.kernel, f"{prefix}{node}.sink",
                              eject, on_packet=hook,
                              register=register)
            # The sink grants the router initial credits via connect();
            # sink-side credits mirror the router's local output credits.
            self.sources.append(source)
            self.sinks.append(sink)

    def _connect(self, a: int, a_port: int, b: int, b_port: int) -> None:
        prefix = self._node_prefix
        # Both directions share the canonical floorplan length, keyed by
        # the driving (a, a_port) of the topology's links() order.
        segments = self._link_segments(a, a_port)
        a_to_b = self._make_link(f"{prefix}{a}>{prefix}{b}",
                                 segments=segments)
        b_to_a = self._make_link(f"{prefix}{b}>{prefix}{a}",
                                 segments=segments)
        router_a, router_b = self.routers[a], self.routers[b]
        router_a.connect(a_port, b_to_a, a_to_b)
        router_b.connect(b_port, a_to_b, b_to_a)

    def _make_delivery_hook(self, node: int) -> Callable[[Packet, int], None]:
        def hook(packet: Packet, tick: int) -> None:
            original = self._inflight.pop(packet.packet_id, None)
            if original is not None:
                packet.inject_tick = original.inject_tick
            self.delivered.append(packet)
            hops = self.topology.hop_count(packet.src, packet.dest)
            self.stats.record_delivery(packet, hops)
            handler = self._handlers.get(node)
            if handler is not None:
                handler(packet, tick)
        return hook

    # -- shared run-time API ----------------------------------------------

    def set_handler(self, node: int,
                    handler: Callable[[Packet, int], None]) -> None:
        """Install a delivery callback at a node (used by system models).

        Mirrors :meth:`repro.noc.network.ICNoCNetwork.set_handler`, so
        endpoint models attach to any registry fabric the same way.
        """
        if not 0 <= node < self.topology.nodes:
            raise TopologyError(f"unknown node {node}")
        self._handlers[node] = handler

    def send(self, packet: Packet) -> None:
        if not 0 <= packet.dest < self.topology.nodes:
            raise TopologyError(f"unknown destination {packet.dest}")
        if packet.src == packet.dest:
            raise TopologyError("src == dest: packets never enter the fabric")
        if (not self.vc_enabled and self.routing.needs_bubble
                and packet.flit_count >= self.config.buffer_depth):
            # The bubble rule's deadlock-freedom argument is virtual
            # cut-through: a packet must fit one FIFO with a slot to
            # spare. Reject loudly instead of wedging the ring.
            raise ConfigurationError(
                f"{packet.flit_count}-flit packet on a ring-closing "
                f"fabric needs buffer_depth >= {packet.flit_count + 1} "
                f"(got {self.config.buffer_depth}); raise buffer_depth "
                f"or shorten packets"
            )
        self._inflight[packet.packet_id] = packet
        self.sources[packet.src].submit(packet)
        if self.engine is not None:
            self.engine.on_submit(packet.src)
        self.stats.packets_injected += 1
        self.kernel.emit("inject", packet)

    def run_ticks(self, ticks: int) -> None:
        if self.engine is not None:
            self.engine.refresh_observers()
        self.kernel.run_ticks(ticks)
        self.stats.elapsed_ticks = self.kernel.tick

    def run_cycles(self, cycles: float) -> None:
        if self.engine is not None:
            self.engine.refresh_observers()
        self.kernel.run_cycles(cycles)
        self.stats.elapsed_ticks = self.kernel.tick

    def drain(self, max_ticks: int = 1_000_000) -> bool:
        if self.engine is not None:
            self.engine.refresh_observers()
        done = self.kernel.run_until(
            lambda: self.stats.packets_delivered >= self.stats.packets_injected,
            max_ticks,
        )
        self.stats.elapsed_ticks = self.kernel.tick
        if self.engine is not None:
            # Make the per-router python state (FIFOs, credits, locks,
            # counters) inspectable again after a drained run.
            self.engine.sync_back()
        return done

    def gating_stats(self) -> GatingStats:
        if self.engine is not None:
            return self.engine.gating_stats()
        total = GatingStats()
        for router in self.routers:
            total.merge(router.gating)
        for link in self.links:
            for stage in link.stages:
                total.merge(stage.gating)
        return total

    def total_buffer_flits(self) -> int:
        """Total FIFO capacity — the stall-buffer cost the IC-NoC avoids."""
        return sum(router.buffer_capacity for router in self.routers)

    @property
    def link_stage_count(self) -> int:
        """Register stages inside segmented links (all directions)."""
        return sum(len(link.stages) for link in self.links)

    @property
    def router_stage_registers(self) -> int:
        """Stage register banks inside the routers: one per in-use output
        port per extra pipeline stage."""
        if self.pipeline_depth == 1:
            return 0
        out_ports = sum(1 for router in self.routers
                        for link in router.out_links if link is not None)
        return (self.pipeline_depth - 1) * out_ports

    # -- physical view ----------------------------------------------------

    @property
    def tech(self):
        """Process constants (configs without a tech field get 90 nm)."""
        return getattr(self.config, "tech", TECH_90NM)

    @property
    def floorplan(self) -> Floorplan:
        """Geometric embedding of this fabric on the die (lazy).

        Grid fabrics tile the chip (torus wrap links at the folded
        length); rings loop along the die perimeter — see
        :mod:`repro.noc.floorplan`. The physical models
        (:mod:`repro.physical`) read link lengths from here.
        """
        if self._floorplan is None:
            topo = self.topology
            width = getattr(self.config, "chip_width_mm", 10.0)
            height = getattr(self.config, "chip_height_mm", 10.0)
            if hasattr(topo, "cols"):
                self._floorplan = grid_fabric_floorplan(
                    topo.cols, topo.rows, topo.links(), width, height
                )
            else:
                self._floorplan = ring_fabric_floorplan(
                    topo.nodes, topo.links(), width, height
                )
        return self._floorplan

    def longest_segment_mm(self) -> float:
        """Longest wire any clock period must cover: the longest link
        when segmentation is off, else the longest per-segment span."""
        max_seg = getattr(self.config, "max_segment_mm", 1.25)
        longest = 0.0
        for length in self.floorplan.link_lengths.values():
            segments = (segment_count(length, max_seg)
                        if self.segment_links else 1)
            longest = max(longest, length / segments)
        return longest

    def operating_frequency_ghz(self) -> float:
        """Max clock rate: min of the router critical path (amortised
        over the pipeline depth) and the Fig. 7 pipeline model at the
        longest wire segment — the same rule
        :class:`~repro.noc.network.ICNoCNetwork` applies, so the physical
        reports cost every fabric at a comparable frequency. Segmenting
        the links and deepening the routers both push this up, which is
        the whole point of the knobs."""
        f_router = router_max_frequency(self.topology.max_ports, self.tech,
                                        self.pipeline_depth)
        f_links = pipeline_max_frequency(self.longest_segment_mm(),
                                         self.tech)
        return min(f_router, f_links)

    def describe(self) -> str:
        describe = getattr(self.topology, "describe", None)
        structure = describe() if describe else f"{self.topology.nodes} nodes"
        flow = (f", {self.n_vcs} VCs ({self.vc_policy.name})"
                if self.vc_enabled else "")
        if self.allocator_name != "rr":
            flow += f", {self.allocator_name} allocation"
        pipe = ""
        if self.pipeline_depth > 1:
            pipe += f", {self.pipeline_depth}-stage routers"
        if self.segment_links:
            pipe += (f", {self.link_stage_count} link stages "
                     f"(<= {getattr(self.config, 'max_segment_mm', 1.25)} "
                     f"mm segments)")
        return (f"{type(self).__name__}: {structure}, "
                f"{len(self.routers)} routers, "
                f"buffer depth {self.config.buffer_depth}{flow}{pipe}")


def make_vc_policy(config: "FabricConfig", cols: int | None = None,
                   rows: int | None = None) -> VcPolicy | None:
    """The VC-assignment policy a :class:`FabricConfig` resolves to.

    None when the config runs plain wormhole. Grid policies need the
    fabric's (cols, rows); the ring derives its shape from ``ports``.
    Only the stock (topology, policy) pairings are dispatched here — a
    new registered fabric supplies its own policy object straight to
    :class:`CreditFabricNetwork` rather than extending this table, and
    an unknown pairing fails loudly instead of building a policy whose
    deadlock argument does not fit the structure.
    """
    if getattr(config, "flow_control", "wormhole") != "vc":
        return None
    name = config.resolved_vc_policy
    if config.topology == "ring" and name == "dateline":
        return RingDatelineVc(config.ports, config.n_vcs)
    if config.topology in ("mesh", "torus"):
        if cols is None or rows is None:
            raise ConfigurationError(
                f"{config.topology}: grid VC policies need the fabric's "
                f"(cols, rows) — pass the _grid_shape result"
            )
        if name == "dateline" and config.topology == "torus":
            return TorusDatelineVc(cols, rows, config.n_vcs)
        if name == "escape":
            return EscapeVcAdaptive(
                cols, rows, config.n_vcs,
                wrap=(config.topology == "torus"),
                reentry=(getattr(config, "allocator", "rr")
                         == "escape-reentry"),
                priority_flows=getattr(config, "priority_flows", ()),
            )
    raise ConfigurationError(
        f"no stock VC policy builder for topology {config.topology!r} "
        f"with policy {name!r}; pass a VcPolicy to CreditFabricNetwork"
    )


class TorusNetwork(CreditFabricNetwork):
    """A 2-D torus under shortest-wrap XY routing.

    Deadlock freedom comes from the bubble rule under wormhole flow
    control, or from dateline/escape VCs under ``flow_control="vc"``
    (which also lifts the packet-length bound).
    """

    def __init__(self, config: "FabricConfig",
                 kernel: SimKernel | None = None):
        cols, rows = _grid_shape(config, "torus")
        topology = TorusTopology(cols, rows)
        super().__init__(config, topology, TorusXYRouting(cols, rows),
                         kernel=kernel, node_prefix="t",
                         port_names=PORT_NAMES,
                         vc_policy=make_vc_policy(config, cols, rows))


class RingNetwork(CreditFabricNetwork):
    """A bidirectional ring under shortest-direction routing."""

    def __init__(self, config: "FabricConfig",
                 kernel: SimKernel | None = None):
        topology = RingTopology(config.ports)
        super().__init__(config, topology, RingRouting(config.ports),
                         kernel=kernel, node_prefix="g",
                         port_names=RING_PORT_NAMES,
                         vc_policy=make_vc_policy(config))


def _grid_shape(config: "FabricConfig", what: str) -> tuple[int, int]:
    """(cols, rows) of a grid fabric: explicit rows, or a square."""
    rows = getattr(config, "rows", None)
    if rows:
        if config.ports % rows:
            raise ConfigurationError(
                f"{what}: ports ({config.ports}) not divisible by rows "
                f"({rows})"
            )
        return config.ports // rows, rows
    side = square_side(config.ports, what)
    return side, side
