"""Pluggable two-stage allocation policies for the unified router.

The :class:`~repro.fabric.router.FabricRouter` separates *what moves*
(FIFOs, credits, links) from *who wins* (this module). An
:class:`Allocator` owns the router's arbitration state and answers two
questions per edge:

* **VC allocation** (:meth:`Allocator.vc_winner`) — which waiting head
  flit acquires a free output VC. Only consulted when ``n_vcs >= 2``;
  the single-VC (wormhole) regime has no VC allocation stage.
* **Switch allocation** (:meth:`Allocator.switch_winner`) — which
  requesting input (flat ``in_port * n_vcs + in_vc`` index) crosses the
  switch toward one output port this edge.

State is deliberately plain — round-robin arbiters keyed by output port
(switch stage) and by ``(out_port, out_vc)`` pair (VC stage) — so every
allocator is introspectable and picklable, which the checkpointed sweep
path requires. At ``n_vcs=1`` the switch arbiters have exactly
``n_ports`` inputs: the historical wormhole router's per-output
round-robin arbiters, bit-identically (same initial pointer, same
rotation), which is what makes wormhole the degenerate case of the
unified router rather than a second implementation.

Policies:

* :class:`RoundRobinAllocator` (``"rr"``) — the historical fair policy.
* :class:`WeightedAllocator` (``"weighted"``) — per-flow bandwidth
  reservations at the switch stage (Even & Fais-style guaranteed QoS):
  an output VC carrying a reservation wins switch allocation whenever
  its measured share of the output's recent grants is below the reserved
  fraction; above it, allocation is plain round-robin among everyone.
  Shares are tracked per output port in deterministic epoch-halved
  windows (exponential decay, integer state, picklable), so isolation
  holds under sustained adversarial load without unbounded counters.
* :class:`EscapeReentryAllocator` (``"escape-reentry"``) — grant-wise
  identical to round-robin, but flags ``wants_reentry``: the escape-VC
  routing policy then lets packets that fell back to the escape
  subnetwork request adaptive VCs again at later hops. Legal under
  Duato's extended theorem: the escape subfunction stays connected and
  deadlock-free and remains requestable at every hop, so every packet
  can always reach a draining channel regardless of how often it leaves
  and re-enters the adaptive set.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.noc.arbiter import RoundRobinArbiter

__all__ = ["Allocator", "RoundRobinAllocator", "WeightedAllocator",
           "EscapeReentryAllocator", "ALLOCATOR_NAMES", "make_allocator"]

#: Registered allocator policy names (CLI ``--allocator`` values).
ALLOCATOR_NAMES = ("rr", "weighted", "escape-reentry")


class Allocator:
    """Base class: round-robin two-stage allocation, keyed state.

    :meth:`bind` is called once by the owning router with its shape;
    until then the allocator is a plain picklable spec. One allocator
    instance serves exactly one router (arbitration state is per
    router), so assembling networks construct a fresh instance per node.
    """

    name = "rr"
    #: Escape-VC policies consult this: may packets on an escape VC
    #: request adaptive VCs again at later hops?
    wants_reentry = False

    def __init__(self) -> None:
        self.n_ports = 0
        self.n_vcs = 0
        #: Switch-stage arbiter per output port, over the flat
        #: ``n_ports * n_vcs`` input-VC request lines. At ``n_vcs=1``
        #: this is the historical wormhole per-output arbiter.
        self.sa_arbiters: list[RoundRobinArbiter] = []
        #: VC-stage arbiter per ``(out_port, out_vc)`` pair — keyed, not
        #: a flat list, so allocator state is introspectable and the
        #: checkpointed sweep path can pickle and compare it per pair.
        self.va_arbiters: dict[tuple[int, int], RoundRobinArbiter] = {}

    def bind(self, n_ports: int, n_vcs: int) -> "Allocator":
        if self.sa_arbiters:
            raise ConfigurationError(
                f"{type(self).__name__} already bound: one allocator "
                f"instance per router"
            )
        self.n_ports = n_ports
        self.n_vcs = n_vcs
        flat = n_ports * n_vcs
        self.sa_arbiters = [RoundRobinArbiter(flat) for _ in range(n_ports)]
        if n_vcs >= 2:
            self.va_arbiters = {
                (out_port, out_vc): RoundRobinArbiter(flat)
                for out_port in range(n_ports)
                for out_vc in range(n_vcs)
            }
        return self

    def vc_winner(self, out_port: int, out_vc: int,
                  requests: Sequence[bool]) -> int | None:
        """Grant the output VC to one requesting input VC (flat index)."""
        return self.va_arbiters[out_port, out_vc].grant(requests)

    def switch_winner(self, out_port: int, requests: Sequence[bool],
                      out_vc_of: Sequence[int]) -> int | None:
        """Grant the switch toward ``out_port`` to one requester.

        ``requests[flat]`` marks input VC ``flat`` as requesting;
        ``out_vc_of[flat]`` names the output VC that request targets
        (all zeros in the single-VC regime). Base policy: round-robin.
        """
        return self.sa_arbiters[out_port].grant(requests)


class RoundRobinAllocator(Allocator):
    """The historical fair policy under its explicit name."""

    name = "rr"


class EscapeReentryAllocator(Allocator):
    """Round-robin grants plus Duato-legal escape-to-adaptive re-entry.

    The grant behaviour is exactly round-robin (so the array backend
    lowers it unchanged); the policy knob rides on ``wants_reentry``,
    which :class:`~repro.fabric.routing.EscapeVcAdaptive` reads when the
    assembling network builds the candidate functions. See the module
    docstring for the legality argument.
    """

    name = "escape-reentry"
    wants_reentry = True


class WeightedAllocator(Allocator):
    """Switch allocation with per-VC bandwidth reservations.

    ``reservations`` maps output VCs to reserved fractions of each
    output port's grant bandwidth (``((vc, fraction), ...)``; fractions
    sum to <= 1). Per output port the allocator tracks recent grants in
    an epoch-halved window: every :data:`EPOCH` grants, the total and
    every per-VC share are halved (integer floor), giving a
    deterministic exponential-decay estimate of each VC's current share
    with bounded, picklable state.

    Grant rule per edge: requesters whose target output VC holds a
    reservation *and* whose measured share is below ``fraction * total``
    are **entitled**; when any requester is entitled, round-robin runs
    over the entitled subset only (the reservation preempts), otherwise
    over all requesters (spare bandwidth is shared fairly — reserved
    flows are not capped at their reservation, they just stop
    preempting). A reserved-but-idle VC therefore costs nothing: with no
    entitled requester the output serves everyone round-robin.

    VC allocation stays round-robin: reservations meter *switch*
    bandwidth, which is what per-flow throughput guarantees need; the VC
    stage only assigns buffers.
    """

    name = "weighted"

    #: Grants per output port between halvings of the share window.
    EPOCH = 64

    def __init__(self,
                 reservations: Sequence[tuple[int, float]] = ()) -> None:
        super().__init__()
        if not reservations:
            raise ConfigurationError(
                "weighted allocation needs at least one (vc, fraction) "
                "reservation"
            )
        total = 0.0
        self.reservations: dict[int, float] = {}
        for vc, fraction in reservations:
            if vc in self.reservations:
                raise ConfigurationError(
                    f"duplicate reservation for vc{vc}"
                )
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"reservation fraction must be in (0, 1], got "
                    f"{fraction} for vc{vc}"
                )
            self.reservations[int(vc)] = float(fraction)
            total += fraction
        if total > 1.0 + 1e-9:
            raise ConfigurationError(
                f"reservations sum to {total:.3f} > 1 of an output's "
                f"bandwidth"
            )
        # Per-output grant window: total grants and per-VC share counts.
        self._sa_total: list[int] = []
        self._sa_share: list[dict[int, int]] = []

    def bind(self, n_ports: int, n_vcs: int) -> "Allocator":
        super().bind(n_ports, n_vcs)
        for vc in self.reservations:
            if not 0 <= vc < n_vcs:
                raise ConfigurationError(
                    f"reservation names vc{vc} but the router has "
                    f"{n_vcs} VCs"
                )
        self._sa_total = [0] * n_ports
        self._sa_share = [{vc: 0 for vc in self.reservations}
                          for _ in range(n_ports)]
        return self

    def switch_winner(self, out_port: int, requests: Sequence[bool],
                      out_vc_of: Sequence[int]) -> int | None:
        res = self.reservations
        total = self._sa_total[out_port]
        share = self._sa_share[out_port]
        entitled = [
            on and out_vc_of[flat] in res
            and share[out_vc_of[flat]] < res[out_vc_of[flat]] * total
            for flat, on in enumerate(requests)
        ]
        pool = entitled if any(entitled) else requests
        winner = self.sa_arbiters[out_port].grant(pool)
        if winner is None:
            return None
        vc = out_vc_of[winner]
        self._sa_total[out_port] = total + 1
        if vc in share:
            share[vc] += 1
        if self._sa_total[out_port] >= self.EPOCH:
            self._sa_total[out_port] //= 2
            for key in share:
                share[key] //= 2
        return winner


def make_allocator(name: str,
                   reservations: Sequence[tuple[int, float]] = (),
                   ) -> Allocator:
    """One fresh (unbound) allocator instance for one router."""
    if name == "rr":
        if reservations:
            raise ConfigurationError(
                "reservations need allocator='weighted'"
            )
        return RoundRobinAllocator()
    if name == "escape-reentry":
        if reservations:
            raise ConfigurationError(
                "reservations need allocator='weighted'"
            )
        return EscapeReentryAllocator()
    if name == "weighted":
        return WeightedAllocator(reservations)
    raise ConfigurationError(
        f"unknown allocator {name!r}; known: {', '.join(ALLOCATOR_NAMES)}"
    )
