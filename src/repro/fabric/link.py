"""Link primitives shared by every fabric.

The repository models two link-level flow-control flavours, one per clock
regime of the paper's comparison:

* :class:`~repro.noc.handshake.HandshakeChannel` (re-exported here) — the
  IC-NoC's 2-phase valid/accept handshake between stages clocked at
  alternating edges of the *integrated* forwarded clock. No buffers, no
  credits: the producer holds data until the consumer's accept.
* :class:`CreditLink` — one directed wire pair between synchronously
  (mesochronously) clocked routers: a ``flit`` wire carrying tick-tagged
  payloads downstream and a ``credit`` wire carrying tick-tagged credit
  returns upstream. Credits guarantee the consumer's input FIFO has
  space — the stall buffers the IC-NoC architecture avoids.

Tick-tagged payloads make the synchronous links race-free without a
delta-cycle scheduler: a value ``(x, sent_tick)`` driven at tick *t*
commits at the end of *t* and is consumed exactly once, at the receiver's
edge two ticks (one full clock cycle) later. Anything older is a stale
wire value and is ignored by the tag check.

Both flavours follow the write-on-change discipline of the idle-component
contract (docs/kernel.md): an idle endpoint drives nothing, so a quiet
link is a fixed point the activity-driven kernel can sleep through.
"""

from __future__ import annotations

from typing import Any

from repro.noc.handshake import HandshakeChannel
from repro.sim.kernel import SimKernel
from repro.sim.signal import Signal

__all__ = ["CreditLink", "HandshakeChannel", "LINK_LATENCY_TICKS"]

#: Ticks between driving a tick-tagged payload and its consumption at the
#: far end: one full clock cycle of wire flight per hop.
LINK_LATENCY_TICKS = 2


class CreditLink:
    """One directed router-to-router (or router-to-NI) connection.

    Two signals: ``flit`` (downstream data) and ``credit`` (upstream
    returns). The helpers below encode the tick-tag protocol once, so
    routers, sources, and sinks cannot disagree on it.
    """

    def __init__(self, kernel: SimKernel, name: str):
        self.name = name
        self.flit: Signal = kernel.signal(f"{name}.flit", initial=None)
        self.credit: Signal = kernel.signal(f"{name}.credit", initial=0)

    # -- producer side ---------------------------------------------------

    def send_flit(self, flit: Any, tick: int) -> None:
        """Launch a flit; the consumer takes it at ``tick + 2``."""
        self.flit.set((flit, tick), tick)

    def send_credits(self, count: int, tick: int) -> None:
        """Return ``count`` credits; the producer collects at ``tick + 2``."""
        self.credit.set((count, tick), tick)

    # -- consumer side ---------------------------------------------------

    def take_flit(self, tick: int) -> Any | None:
        """The flit arriving exactly this edge, or None.

        Tick-tagged: a payload launched at ``tick - 2`` is consumed here,
        once; older wire values are stale and ignored.
        """
        payload = self.flit.value
        if payload is None:
            return None
        flit, sent_tick = payload
        return flit if sent_tick == tick - LINK_LATENCY_TICKS else None

    def take_credits(self, tick: int) -> int:
        """Credits arriving exactly this edge (0 if none)."""
        payload = self.credit.value
        if payload is None or payload == 0:
            return 0
        count, sent_tick = payload
        return count if sent_tick == tick - LINK_LATENCY_TICKS else 0

    def settle_credit(self, tick: int) -> bool:
        """Zero a stale credit wire (write-on-change); True if it drove.

        A credit wire carrying an already-consumed ``(count, tick)``
        payload is zeroed once, then left alone, so an idle endpoint
        drives nothing and the link is a sleepable fixed point.
        """
        if self.credit.value != 0:
            self.credit.set(0, tick)
            return True
        return False

    def __repr__(self) -> str:
        return f"CreditLink({self.name!r})"
