"""Link primitives shared by every fabric.

The repository models two link-level flow-control flavours, one per clock
regime of the paper's comparison:

* :class:`~repro.noc.handshake.HandshakeChannel` (re-exported here) — the
  IC-NoC's 2-phase valid/accept handshake between stages clocked at
  alternating edges of the *integrated* forwarded clock. No buffers, no
  credits: the producer holds data until the consumer's accept.
* :class:`CreditLink` — one directed wire pair (or wire bundle) between
  synchronously (mesochronously) clocked routers: a ``flit`` wire
  carrying tick-tagged payloads downstream and one credit wire **per
  virtual channel** carrying tick-tagged credit returns upstream.
  Credits guarantee the consumer's input FIFO has space — the stall
  buffers the IC-NoC architecture avoids. At ``n_vcs=1`` (the wormhole
  degenerate case) the bundle collapses to the historical two-signal
  layout bit-identically: one ``credit`` wire under the historical name,
  flit payloads untagged by VC.

Tick-tagged payloads make the synchronous links race-free without a
delta-cycle scheduler: a value ``(x, sent_tick)`` driven at tick *t*
commits at the end of *t* and is consumed exactly once, at the receiver's
edge two ticks (one full clock cycle) later. Anything older is a stale
wire value and is ignored by the tag check.

**Virtual channels.** A link built with ``n_vcs=V > 1`` carries at most
one flit per cycle on the shared ``flit`` wire — VCs share the physical
channel, which is the whole point (a blocked packet on one VC no longer
blocks the link). Flit payloads become ``((flit, vc), tick)`` and each
VC's credits return on its own wire (``credit0`` … ``credit{V-1}``), so
the consumer's per-VC input FIFOs are flow-controlled independently.

**Segmented links.** A link built with ``segments=K > 1`` models the
paper's pipelined wires on the credit fabrics: the flit path becomes K
wire segments joined by ``K - 1`` clocked :class:`LinkStage` registers
(the same role the tree's :class:`~repro.noc.pipeline.PipelineStage`
plays on the handshake links), and every credit path runs back through
the same stages. End-to-end flit latency grows from 1 to K cycles, the
longest wire any clock period must cover shrinks to ``length / K``, and
the credit round trip grows to ``2 K`` cycles — which is why the consumer
FIFO behind a segmented link must hold ``pipeline_depth + 2 * segments``
flits to stream at full rate (the ``capacity`` the assembling network
attaches here; see docs/fabric.md). ``segments=1`` builds exactly the
historical two-signal link, bit-identically.

Both flavours follow the write-on-change discipline of the idle-component
contract (docs/kernel.md): an idle endpoint drives nothing, a stage with
nothing in flight sleeps watching its upstream wires, so a quiet link is
a fixed point the activity-driven kernel can sleep through.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.clocking.gating import GatingStats
from repro.errors import ConfigurationError
from repro.noc.handshake import HandshakeChannel
from repro.sim.component import ClockedComponent, GatedComponentMixin
from repro.sim.kernel import SimKernel
from repro.sim.signal import Signal

__all__ = ["CreditLink", "HandshakeChannel", "LinkStage",
           "LINK_LATENCY_TICKS"]

#: Ticks between driving a tick-tagged payload and its consumption at the
#: far end: one full clock cycle of wire flight per hop (or per segment).
#: Observability leans on this constant: a probe on a link's consumer-
#: side ``flit`` wire sees every launched flit as one change (payloads
#: are tick-tagged, never reset to None), and arrival at the consuming
#: router is the change tick plus this latency — the rule the
#: :mod:`repro.telemetry` registry and tracer use for occupancy and
#: hop-arrival timing.
LINK_LATENCY_TICKS = 2


class LinkStage(GatedComponentMixin, ClockedComponent):
    """One register stage inside a segmented credit link.

    Re-launches tick-tagged payloads one segment further each cycle:
    ``forward`` pairs carry flits downstream, ``backward`` pairs carry
    credit counts upstream (zeroed write-on-change, exactly like the
    routers' credit returns). One stage serves every :class:`CreditLink`
    shape — one flit wire plus one credit wire per VC; the pair lists
    are the only difference.

    Honours the idle contract: an edge that registers nothing and has no
    stale credit wire to settle is a fixed point, and the stage sleeps
    watching its upstream wires. Registered flits count as enabled edges
    in the gating statistics (the stage is a clocked register bank).
    """

    def __init__(self, kernel: SimKernel, name: str,
                 forward: Sequence[tuple[Signal, Signal]],
                 backward: Sequence[tuple[Signal, Signal]]):
        super().__init__(name, parity=0)
        self._forward = tuple(forward)
        self._backward = tuple(backward)
        self._watch = tuple(src for src, _dst in self._forward) + \
            tuple(src for src, _dst in self._backward)
        self._gating = GatingStats()
        kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        enabled = False   # a flit crossed the register bank
        active = False    # anything at all happened (sleep decision)
        for src, dst in self._forward:
            payload = src.value
            if payload is None:
                continue
            value, sent_tick = payload
            if sent_tick == tick - LINK_LATENCY_TICKS:
                dst.set((value, tick), tick)
                enabled = True
        for src, dst in self._backward:
            count = 0
            payload = src.value
            if payload is not None and payload != 0:
                value, sent_tick = payload
                if sent_tick == tick - LINK_LATENCY_TICKS:
                    count = value
            if count:
                dst.set((count, tick), tick)
                active = True
            elif dst.value != 0:
                dst.set(0, tick)  # settle a stale credit wire, once
                active = True
        self.gating.record(enabled)
        if not enabled and not active:
            self.sleep_until(*self._watch)


class CreditLink:
    """One directed router-to-router (or router-to-NI) connection.

    Per segment: one shared ``flit`` wire (downstream data) and one
    credit wire per VC (upstream returns). The helpers below encode the
    tick-tag protocol once, so routers, sources, and sinks cannot
    disagree on it — and they hide both the segmentation and the VC
    count entirely: producers drive the first segment, consumers see the
    last, and the single-VC wire layout stays the historical one.

    Attributes:
        n_vcs: virtual channels multiplexed on the flit wire (1 = the
            historical wormhole link, bit-identical wire layout and
            payload shape).
        segments: pipeline segments (1 = the historical direct wire).
        capacity: consumer FIFO depth (per VC) this link was sized for,
            or None for the consumer's default — the assembling network
            sets it so producer credits and consumer FIFO depth cannot
            disagree.
        stages: the ``segments - 1`` :class:`LinkStage` registers.
        flit: the consumer-side flit wire (what receivers watch).
        credits: the producer-side credit wires, one per VC (what
            senders watch). At ``n_vcs=1`` the single wire is also
            exposed as ``credit`` under its historical name.
    """

    def __init__(self, kernel: SimKernel, name: str, n_vcs: int = 1,
                 segments: int = 1, capacity: int | None = None):
        if n_vcs < 1:
            raise ConfigurationError("a VC link needs at least 1 VC")
        if segments < 1:
            raise ConfigurationError(
                f"a link needs >= 1 segment, got {segments}"
            )
        if capacity is not None and capacity < 2:
            raise ConfigurationError(
                f"credit flow control needs link capacity >= 2, "
                f"got {capacity}"
            )
        self.name = name
        self.n_vcs = n_vcs
        self.segments = segments
        self.capacity = capacity
        self.stages: list[LinkStage] = []
        # Single-VC flit payloads stay the historical untagged
        # ``(flit, tick)`` shape; multi-VC payloads are
        # ``((flit, vc), tick)``. Probes, VCD dumps, and hand-driven
        # wires in tests see exactly the wire traffic they always did.
        self._tag_vc = n_vcs > 1

        def credit_name(vc: int) -> str:
            return f"{name}.credit" if n_vcs == 1 else f"{name}.credit{vc}"

        if segments == 1:
            self.flit: Signal = kernel.signal(f"{name}.flit", initial=None)
            self.credits: list[Signal] = [
                kernel.signal(credit_name(vc), initial=0)
                for vc in range(n_vcs)
            ]
            self._flit_in = self.flit
            self._credits_out = self.credits
        else:
            flit_wires = [kernel.signal(f"{name}.flit.s{j}", initial=None)
                          for j in range(segments - 1)]
            flit_wires.append(kernel.signal(f"{name}.flit", initial=None))
            # credit_wires[vc][j]: wire j of VC vc's upstream chain; wire
            # 0 (producer side) keeps the historical name senders watch.
            credit_wires = [
                [kernel.signal(credit_name(vc), initial=0)]
                + [kernel.signal(f"{credit_name(vc)}.s{j}", initial=0)
                   for j in range(1, segments)]
                for vc in range(n_vcs)
            ]
            self.flit = flit_wires[-1]                       # consumer side
            self.credits = [chain[0] for chain in credit_wires]
            self._flit_in = flit_wires[0]
            self._credits_out = [chain[-1] for chain in credit_wires]
            self.stages = [
                LinkStage(kernel, f"{name}.st{j}",
                          forward=[(flit_wires[j], flit_wires[j + 1])],
                          backward=[(chain[j + 1], chain[j])
                                    for chain in credit_wires])
                for j in range(segments - 1)
            ]
        if n_vcs == 1:
            self.credit: Signal = self.credits[0]

    # -- producer side ---------------------------------------------------

    def send_flit(self, flit: Any, vc: int, tick: int) -> None:
        """Launch a flit on ``vc``; consumed ``segments`` cycles later."""
        payload = (flit, vc) if self._tag_vc else flit
        self._flit_in.set((payload, tick), tick)

    def send_credits(self, vc: int, count: int, tick: int) -> None:
        """Return ``count`` credits for ``vc`` (consumer side); the
        producer collects them ``segments`` cycles later."""
        self._credits_out[vc].set((count, tick), tick)

    # -- consumer side ---------------------------------------------------

    def take_flit(self, tick: int) -> tuple[Any, int] | None:
        """The ``(flit, vc)`` arriving exactly this edge, or None.

        Tick-tagged: a payload launched (or re-launched by the last
        stage) at ``tick - 2`` is consumed here, once; older wire values
        are stale and ignored.
        """
        payload = self.flit.value
        if payload is None:
            return None
        tagged, sent_tick = payload
        if sent_tick != tick - LINK_LATENCY_TICKS:
            return None
        return tagged if self._tag_vc else (tagged, 0)

    def take_credits(self, vc: int, tick: int) -> int:
        """Credits for ``vc`` arriving exactly this edge (0 if none)."""
        payload = self.credits[vc].value
        if payload is None or payload == 0:
            return 0
        count, sent_tick = payload
        return count if sent_tick == tick - LINK_LATENCY_TICKS else 0

    def settle_credit(self, vc: int, tick: int) -> bool:
        """Zero a stale credit wire (write-on-change); True if it drove.

        A credit wire carrying an already-consumed ``(count, tick)``
        payload is zeroed once, then left alone, so an idle endpoint
        drives nothing and the link is a sleepable fixed point. On a
        segmented link this settles the consumer-side wire; the stages
        settle their own.
        """
        if self._credits_out[vc].value != 0:
            self._credits_out[vc].set(0, tick)
            return True
        return False

    def __repr__(self) -> str:
        parts = [repr(self.name)]
        if self.n_vcs > 1:
            parts.append(f"n_vcs={self.n_vcs}")
        if self.segments > 1:
            parts.append(f"segments={self.segments}")
        return f"CreditLink({', '.join(parts)})"
