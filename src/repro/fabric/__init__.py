"""The shared fabric layer: one stack, many topologies.

The paper's comparison — a tree whose links double as the clock
distribution network vs meshes needing mesochronous fallbacks — used to
live in two hand-duplicated component stacks (``repro.noc`` for the tree,
``repro.mesh`` for the mesh). This package is the common machinery both
now stand on, and the place new fabrics plug into:

* :mod:`~repro.fabric.link` — the two link flavours (valid/accept
  handshake; tick-tagged credit wires);
* :mod:`~repro.fabric.routing` — pluggable per-node routing strategies
  (tree up*/down*, mesh XY, torus shortest-wrap XY, ring) and the bubble
  rule that keeps ring-closing fabrics deadlock-free for packets that
  fit one FIFO (enforced at ``send``);
* :mod:`~repro.fabric.router` — the N-port credit/wormhole
  :class:`FabricRouter` with the idle sleep contract, gating backfill,
  and the ``arbitration_grant``/``credit_exhausted`` kernel events;
* :mod:`~repro.fabric.endpoint` — the shared source/sink adapters;
* :mod:`~repro.fabric.topologies` — structure descriptions (torus, ring);
* :mod:`~repro.fabric.network` — the generic assembly with the
  ICNoC-compatible run/sweep/stats API;
* :mod:`~repro.fabric.registry` — where each topology declares its
  structure, routing, and clock-distribution capability (``integrated``
  vs ``mesochronous``), checked at build time.

``repro.noc`` and ``repro.mesh`` remain as thin topology-specific layers
(and stable import paths) over this package.
"""

from repro.fabric.allocator import (
    ALLOCATOR_NAMES,
    Allocator,
    EscapeReentryAllocator,
    RoundRobinAllocator,
    WeightedAllocator,
    make_allocator,
)
from repro.fabric.link import CreditLink, HandshakeChannel
from repro.fabric.routing import (
    DatelineVc,
    EscapeVcAdaptive,
    RingDatelineVc,
    RingRouting,
    RoutingStrategy,
    TorusDatelineVc,
    TorusXYRouting,
    VcPolicy,
    XYRouting,
    dateline_class,
    tree_updown_route,
)
from repro.fabric.router import FabricRouter
from repro.fabric.vc import (
    VcCreditLink,
    VcFabricRouter,
    VcFabricSink,
    VcFabricSource,
)
from repro.fabric.endpoint import FabricSink, FabricSource
from repro.fabric.topologies import RingTopology, TorusTopology
from repro.fabric.network import (
    CreditFabricNetwork,
    RingNetwork,
    TorusNetwork,
    make_vc_policy,
)
from repro.fabric.registry import (
    CLOCK_INTEGRATED,
    CLOCK_MESOCHRONOUS,
    FLOW_VC,
    FLOW_WORMHOLE,
    FabricConfig,
    TopologyEntry,
    build_fabric,
    get_topology,
    register_topology,
    topology_names,
    topology_table,
)

__all__ = [
    "ALLOCATOR_NAMES",
    "Allocator",
    "RoundRobinAllocator",
    "WeightedAllocator",
    "EscapeReentryAllocator",
    "make_allocator",
    "CreditLink",
    "HandshakeChannel",
    "RoutingStrategy",
    "XYRouting",
    "TorusXYRouting",
    "RingRouting",
    "tree_updown_route",
    "VcPolicy",
    "DatelineVc",
    "TorusDatelineVc",
    "RingDatelineVc",
    "EscapeVcAdaptive",
    "dateline_class",
    "make_vc_policy",
    "FabricRouter",
    "VcCreditLink",
    "VcFabricRouter",
    "VcFabricSource",
    "VcFabricSink",
    "FLOW_WORMHOLE",
    "FLOW_VC",
    "FabricSource",
    "FabricSink",
    "TorusTopology",
    "RingTopology",
    "CreditFabricNetwork",
    "TorusNetwork",
    "RingNetwork",
    "CLOCK_INTEGRATED",
    "CLOCK_MESOCHRONOUS",
    "FabricConfig",
    "TopologyEntry",
    "build_fabric",
    "get_topology",
    "register_topology",
    "topology_names",
    "topology_table",
    "ConcentratedTreeNetwork",
]


def __getattr__(name):
    # Lazy: ctree pulls in the whole tree network stack; importing it
    # eagerly would cycle when repro.noc itself triggers this package.
    if name == "ConcentratedTreeNetwork":
        from repro.fabric.ctree import ConcentratedTreeNetwork
        return ConcentratedTreeNetwork
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
