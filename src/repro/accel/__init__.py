"""Trace-driven accelerator-system workloads over every registered fabric.

The package replays a portable JSONL trace of compute events and DMA
transfers — generated offline for canned models (LLM decode step, tiled
GEMM, parameter server) — through clocked endpoint models attached to any
registry fabric's network interfaces:

- :mod:`repro.accel.trace` — the versioned trace schema (load/save),
- :mod:`repro.accel.generators` — torch-free seeded trace generators,
- :mod:`repro.accel.placement` — picklable endpoint→node mapping specs,
- :mod:`repro.accel.endpoints` — ControlProcessor / ProcessingElement /
  MemoryChannel clocked components honouring the idle sleep contract,
- :mod:`repro.accel.replay` — build + run + results, and mapping sweeps.

``python -m repro.cli replay --topology torus --flow-control vc`` runs a
canned trace end to end; replays are bit-identical across the
activity-driven and naive kernels and across repeat runs.
"""

from repro.accel.trace import (  # noqa: F401
    ACCEL_TRACE_SCHEMA,
    ACCEL_TRACE_VERSION,
    AccelEvent,
    AccelTrace,
    dma_flits,
    gemm_cycles,
    load_accel_trace,
    save_accel_trace,
)
from repro.accel.generators import MODEL_NAMES, generate_trace  # noqa: F401
from repro.accel.placement import Placement, default_placement  # noqa: F401
from repro.accel.replay import (  # noqa: F401
    ReplayPoint,
    ReplayResults,
    ReplaySystem,
    evaluate_replay_point,
    measure_replay_points,
    replay_trace_on_fabric,
    sweep_placements,
)
