"""Clocked endpoint models of the accelerator system.

Three component kinds replay a trace over any registered fabric:

- :class:`ControlProcessor` holds the dependency graph and fans commands
  out to the PEs — an event is dispatched once every dependency has
  reported completion, in trace order per PE;
- :class:`ProcessingElement` executes its command stream in order:
  compute events occupy it for the event's cycle cost, DMA events turn
  into request + payload bursts toward a memory channel and stall the PE
  until the transfer completes;
- :class:`MemoryChannel` services read/write requests one at a time at a
  fixed word rate, streaming read data back and acknowledging writes.

All three honour the idle-component sleep contract: a PE mid-compute
sleeps on a ``call_at`` timer, the CP sleeps between completion reports,
a drained memory channel sleeps on its inbox — so compute-heavy phases
with a silent fabric fast-forward under the activity-driven kernel, and
(because every transition is condition-checked on the edge) replays stay
bit-identical under the naive kernel.

Endpoints attach *after* the network is built, so delivery handlers wake
them on the very tick a packet arrives — the same tick the naive kernel
would have them observe it.

Message protocol (payload words, 32-bit each)::

    CMD        [1, event_id]              CP  -> PE
    DONE       [2, event_id]              PE  -> CP
    READ_REQ   [3, event_id, data_flits]  PE  -> mem
    WRITE_REQ  [4, event_id, data_flits]  PE  -> mem
    DATA       [5, event_id, *words]      mem -> PE   (read payload burst)
    WDATA      [6, event_id, *words]      PE  -> mem  (write payload burst)
    ACK        [7, event_id]              mem -> PE

Bursts are chunked to the fabric's packet bound (the bubble rule caps
wormhole packets on ring-closing fabrics); request/payload pairing is
counted per event id, so packet reordering between distinct packets can
never corrupt a transfer.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError, ProtocolError
from repro.accel.placement import Placement
from repro.accel.trace import AccelEvent, AccelTrace, KIND_COMPUTE
from repro.noc.packet import Packet
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel

MSG_CMD = 1
MSG_DONE = 2
MSG_READ_REQ = 3
MSG_WRITE_REQ = 4
MSG_DATA = 5
MSG_WDATA = 6
MSG_ACK = 7

#: Header words every protocol packet spends (kind + event id).
HEADER_WORDS = 2

#: Burst packets never exceed this many flits even on unbounded fabrics
#: (tree handshake links) — keeps store-and-forward latency comparable.
MAX_PACKET_FLITS_CAP = 8

#: Words a memory channel moves per cycle while servicing a transfer.
DEFAULT_MEM_WORDS_PER_CYCLE = 4


def burst_packets(src: int, dest: int, kind: int, event_id: int,
                  data_flits: int, max_packet_flits: int) -> list[Packet]:
    """Chunk a payload of ``data_flits`` words into protocol packets."""
    per_packet = max_packet_flits - HEADER_WORDS
    if per_packet < 1:
        raise ConfigurationError(
            f"burst packets need >= {HEADER_WORDS + 1} flits, "
            f"got a {max_packet_flits}-flit bound")
    packets = []
    remaining = data_flits
    while remaining > 0:
        words = min(per_packet, remaining)
        packets.append(Packet(src=src, dest=dest,
                              payload=[kind, event_id] + [0] * words))
        remaining -= words
    return packets


class _AccelEndpoint(ClockedComponent):
    """Shared inbox + delivery plumbing of the three endpoint models."""

    def __init__(self, kernel: SimKernel, name: str, network,
                 node: int):
        super().__init__(name, parity=0)
        self.network = network
        self.node = node
        self.inbox: deque[Packet] = deque()
        network.set_handler(node, self.deliver)
        kernel.add_component(self)

    def deliver(self, packet: Packet, tick: int) -> None:
        """Sink-side delivery hook: enqueue and wake for this edge."""
        self.inbox.append(packet)
        self.wake()

    def _send(self, dest: int, payload: list[int]) -> None:
        self.network.send(Packet(src=self.node, dest=dest,
                                 payload=payload))


class ControlProcessor(_AccelEndpoint):
    """Dispatches the trace's events to the PEs as deps resolve."""

    def __init__(self, kernel: SimKernel, network, trace: AccelTrace,
                 placement: Placement):
        super().__init__(kernel, "accel.cp", network, placement.cp)
        self.trace = trace
        self.placement = placement
        self.queues: dict[int, deque[AccelEvent]] = {
            pe: deque() for pe in range(trace.pes)}
        for event in trace.events:
            self.queues[event.pe].append(event)
        self.completed: set[int] = set()
        self.commands_sent = 0
        self.last_done_tick = 0

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.trace.events)

    def on_edge(self, tick: int) -> None:
        while self.inbox:
            packet = self.inbox.popleft()
            kind, event_id = packet.payload[0], packet.payload[1]
            if kind != MSG_DONE:
                raise ProtocolError(
                    f"control processor got message kind {kind}")
            self.completed.add(event_id)
            self.last_done_tick = tick
        # Dispatch every event whose dependencies are met, in trace
        # order per PE. Anything still blocked waits on a DONE that is
        # guaranteed to arrive (the earliest incomplete event always has
        # complete deps), so sleeping below can never deadlock.
        for pe_index, queue in self.queues.items():
            while queue and all(dep in self.completed
                                for dep in queue[0].deps):
                event = queue.popleft()
                self._send(self.placement.pes[pe_index],
                           [MSG_CMD, event.event_id])
                self.commands_sent += 1
        self.sleep_until()  # deliver() wakes on the next completion

    @property
    def makespan_cycles(self) -> int:
        """Cycles from replay start to the last completion report."""
        return self.last_done_tick // 2


class ProcessingElement(_AccelEndpoint):
    """Executes its command stream in order: compute, then DMA stalls."""

    def __init__(self, kernel: SimKernel, network, index: int,
                 events: dict[int, AccelEvent], placement: Placement,
                 max_packet_flits: int):
        super().__init__(kernel, f"accel.pe{index}", network,
                         placement.pes[index])
        self.index = index
        self.events = events
        self.placement = placement
        self.max_packet_flits = max_packet_flits
        self.commands: deque[int] = deque()
        self.current: AccelEvent | None = None
        self.busy_until = 0
        self.wait_from = 0
        self.data_needed = 0
        self.data_received = 0
        self.ack_received = False
        self.compute_cycles = 0
        self.stall_cycles = 0
        #: Compute event ids in completion order — the per-PE ordering
        #: the cross-fabric determinism tests compare.
        self.compute_log: list[int] = []

    def on_edge(self, tick: int) -> None:
        while self.inbox:
            packet = self.inbox.popleft()
            kind, event_id = packet.payload[0], packet.payload[1]
            if kind == MSG_CMD:
                self.commands.append(event_id)
            elif kind == MSG_DATA:
                self._expect_current(event_id, kind)
                self.data_received += len(packet.payload) - HEADER_WORDS
            elif kind == MSG_ACK:
                self._expect_current(event_id, kind)
                self.ack_received = True
            else:
                raise ProtocolError(f"PE{self.index} got kind {kind}")
        if self.current is not None and self._current_finished(tick):
            self._finish(tick)
        if self.current is None and self.commands:
            self._start(self.events[self.commands.popleft()], tick)
        # Asleep, the next edge changes nothing: a busy compute waits on
        # its call_at timer, a DMA waits on delivery, idle waits on CMD.
        self.sleep_until()

    def _expect_current(self, event_id: int, kind: int) -> None:
        if self.current is None or event_id != self.current.event_id:
            raise ProtocolError(
                f"PE{self.index}: kind-{kind} message for event "
                f"{event_id} does not match the current transfer")

    def _current_finished(self, tick: int) -> bool:
        event = self.current
        if event.kind == KIND_COMPUTE:
            return tick >= self.busy_until
        if event.direction == "read":
            return self.data_received >= self.data_needed
        return self.ack_received

    def _start(self, event: AccelEvent, tick: int) -> None:
        self.current = event
        if event.kind == KIND_COMPUTE:
            self.busy_until = tick + 2 * event.cycles
            # Parity-0 deadline: wake on the preceding odd tick so the
            # completing edge fires exactly at busy_until in both modes.
            self._kernel.call_at(self.busy_until - 1,
                                 lambda _tick: self.wake())
            return
        mem_node = self.placement.mems[event.mem]
        flits = event.flits
        self.wait_from = tick
        if event.direction == "read":
            self.data_needed = flits
            self.data_received = 0
            self._send(mem_node, [MSG_READ_REQ, event.event_id, flits])
        else:
            self.ack_received = False
            self._send(mem_node, [MSG_WRITE_REQ, event.event_id, flits])
            for packet in burst_packets(self.node, mem_node, MSG_WDATA,
                                        event.event_id, flits,
                                        self.max_packet_flits):
                self.network.send(packet)

    def _finish(self, tick: int) -> None:
        event = self.current
        if event.kind == KIND_COMPUTE:
            self.compute_cycles += event.cycles
            self.compute_log.append(event.event_id)
        else:
            self.stall_cycles += (tick - self.wait_from) // 2
        self.current = None
        self._send(self.placement.cp, [MSG_DONE, event.event_id])


class MemoryChannel(_AccelEndpoint):
    """A single-ported memory controller: in-order, fixed word rate."""

    def __init__(self, kernel: SimKernel, network, index: int,
                 placement: Placement, max_packet_flits: int,
                 words_per_cycle: int = DEFAULT_MEM_WORDS_PER_CYCLE):
        super().__init__(kernel, f"accel.mem{index}", network,
                         placement.mems[index])
        if words_per_cycle < 1:
            raise ConfigurationError("words_per_cycle must be >= 1")
        self.index = index
        self.words_per_cycle = words_per_cycle
        self.max_packet_flits = max_packet_flits
        #: (event_id, requester node, direction, payload flits) in
        #: request-arrival order — the service queue.
        self.jobs: deque[tuple[int, int, str, int]] = deque()
        self.received: dict[int, int] = {}
        self.busy: tuple[int, int, str, int] | None = None
        self.ready_at = 0
        self.reads_served = 0
        self.writes_served = 0

    def on_edge(self, tick: int) -> None:
        while self.inbox:
            packet = self.inbox.popleft()
            kind, event_id = packet.payload[0], packet.payload[1]
            if kind == MSG_READ_REQ:
                self.jobs.append((event_id, packet.src, "read",
                                  packet.payload[2]))
            elif kind == MSG_WRITE_REQ:
                self.jobs.append((event_id, packet.src, "write",
                                  packet.payload[2]))
            elif kind == MSG_WDATA:
                self.received[event_id] = (
                    self.received.get(event_id, 0)
                    + len(packet.payload) - HEADER_WORDS)
            else:
                raise ProtocolError(f"mem{self.index} got kind {kind}")
        if self.busy is not None and tick >= self.ready_at:
            self._complete(self.busy)
            self.busy = None
        if self.busy is None and self.jobs:
            event_id, _src, direction, flits = self.jobs[0]
            # A write is serviceable once its payload has fully landed;
            # an incomplete head blocks the queue (in-order controller)
            # until the remaining WDATA packets wake us.
            if direction == "read" or \
                    self.received.get(event_id, 0) >= flits:
                self.busy = self.jobs.popleft()
                cycles = max(1, -(-flits // self.words_per_cycle))
                self.ready_at = tick + 2 * cycles
                self._kernel.call_at(self.ready_at - 1,
                                     lambda _tick: self.wake())
        self.sleep_until()

    def _complete(self, job: tuple[int, int, str, int]) -> None:
        event_id, requester, direction, flits = job
        if direction == "read":
            self.reads_served += 1
            for packet in burst_packets(self.node, requester, MSG_DATA,
                                        event_id, flits,
                                        self.max_packet_flits):
                self.network.send(packet)
        else:
            self.writes_served += 1
            self.received.pop(event_id, None)
            self._send(requester, [MSG_ACK, event_id])
