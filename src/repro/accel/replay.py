"""Build, run and measure a trace replay on any registered fabric.

:class:`ReplaySystem` attaches the endpoint models of
:mod:`repro.accel.endpoints` to a freshly built registry fabric and runs
the replay to completion in fixed tick chunks — the same chunking under
both kernel modes, so the activity-driven fast path and the naive loop
execute identical tick sequences and the results are bit-identical.

:class:`ReplayPoint` is the picklable mapping-sweep spec: it rides
:func:`repro.analysis.parallel.parallel_map` to worker processes and
hashes stably for checkpoints (its fabric config field is named
``network`` for :func:`~repro.analysis.parallel.spec_hash`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.accel.endpoints import (
    HEADER_WORDS,
    MAX_PACKET_FLITS_CAP,
    ControlProcessor,
    DEFAULT_MEM_WORDS_PER_CYCLE,
    MemoryChannel,
    ProcessingElement,
)
from repro.accel.generators import generate_trace
from repro.accel.placement import Placement, default_placement
from repro.accel.trace import AccelTrace, load_accel_trace
from repro.fabric.registry import FabricConfig

#: Replays abort (``completed=False``) past this many cycles.
DEFAULT_MAX_CYCLES = 500_000

#: Ticks per ``run_ticks`` chunk of the replay loop — fixed, so both
#: kernel modes advance through exactly the same tick sequence.
CHUNK_TICKS = 64


def max_packet_flits(network) -> int:
    """The packet bound the replay's bursts must respect on ``network``.

    Ring-closing wormhole fabrics enforce the bubble rule (packets must
    leave a buffer slot spare); everything else gets the flat cap.
    """
    cap = MAX_PACKET_FLITS_CAP
    routing = getattr(network, "routing", None)
    if routing is not None and getattr(routing, "needs_bubble", False) \
            and not network.vc_enabled:
        cap = min(cap, network.config.buffer_depth - 1)
        if cap < HEADER_WORDS + 1:
            raise ConfigurationError(
                f"replay on a ring-closing wormhole fabric needs "
                f"buffer_depth >= {HEADER_WORDS + 2} for its "
                f"{HEADER_WORDS + 1}-flit request packets "
                f"(got {network.config.buffer_depth}); raise "
                f"buffer_depth or use flow_control='vc'"
            )
    return cap


@dataclass(frozen=True)
class PEResult:
    """Per-PE accounting of one replay."""

    pe: int
    compute_cycles: int
    stall_cycles: int
    utilization: float
    events: tuple[int, ...]


@dataclass(frozen=True)
class ReplayResults:
    """What one replay measured — plain data, stable across repeats.

    Deliberately free of packet ids and wall-clock anything: the JSON
    form is byte-identical across kernel modes and repeat runs, which is
    the determinism contract the tests pin down.
    """

    model: str
    topology: str
    flow_control: str
    completed: bool
    makespan_cycles: int
    noc_stall_cycles: int
    commands_sent: int
    packets_delivered: int
    flits_delivered: int
    per_pe: tuple[PEResult, ...]

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "topology": self.topology,
            "flow_control": self.flow_control,
            "completed": self.completed,
            "makespan_cycles": self.makespan_cycles,
            "noc_stall_cycles": self.noc_stall_cycles,
            "commands_sent": self.commands_sent,
            "packets_delivered": self.packets_delivered,
            "flits_delivered": self.flits_delivered,
            "per_pe": [
                {"pe": r.pe, "compute_cycles": r.compute_cycles,
                 "stall_cycles": r.stall_cycles,
                 "utilization": r.utilization,
                 "events": list(r.events)}
                for r in self.per_pe
            ],
        }

    def to_json(self) -> str:
        import json
        return json.dumps(self.to_dict(), sort_keys=True)


class ReplaySystem:
    """The endpoint models attached to one freshly built fabric."""

    def __init__(self, trace: AccelTrace, config: FabricConfig,
                 placement: Placement | None = None,
                 mem_words_per_cycle: int = DEFAULT_MEM_WORDS_PER_CYCLE):
        if config.backend != "dispatch":
            raise ConfigurationError(
                "replay endpoints are dispatch components; the array "
                "backend has no delivery handlers — use "
                "backend='dispatch'"
            )
        self.trace = trace
        self.config = config
        self.network = config.build()
        self.placement = placement if placement is not None \
            else default_placement(config.ports, trace.pes, trace.mems)
        self.placement.check_fits(config.ports)
        if len(self.placement.pes) != trace.pes \
                or len(self.placement.mems) != trace.mems:
            raise ConfigurationError(
                f"placement shape ({len(self.placement.pes)} PEs, "
                f"{len(self.placement.mems)} mems) does not match the "
                f"trace ({trace.pes} PEs, {trace.mems} mems)"
            )
        bound = max_packet_flits(self.network)
        kernel = self.network.kernel
        # Registration order is part of the determinism contract: CP,
        # then PEs, then memory channels, all after the network's own
        # components so a delivery wakes its endpoint on the same tick.
        self.cp = ControlProcessor(kernel, self.network, trace,
                                   self.placement)
        events = {event.event_id: event for event in trace.events}
        self.pes = [
            ProcessingElement(kernel, self.network, index, events,
                              self.placement, bound)
            for index in range(trace.pes)
        ]
        self.mems = [
            MemoryChannel(kernel, self.network, index, self.placement,
                          bound, mem_words_per_cycle)
            for index in range(trace.mems)
        ]

    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES) -> "ReplayResults":
        """Run to completion (or the cycle budget) and collect results."""
        budget_ticks = 2 * max_cycles
        kernel = self.network.kernel
        while not self.cp.done and kernel.tick < budget_ticks:
            self.network.run_ticks(CHUNK_TICKS)
        return self.results()

    def results(self) -> "ReplayResults":
        makespan = self.cp.makespan_cycles
        per_pe = tuple(
            PEResult(
                pe=pe.index,
                compute_cycles=pe.compute_cycles,
                stall_cycles=pe.stall_cycles,
                utilization=(pe.compute_cycles / makespan
                             if makespan else 0.0),
                events=tuple(pe.compute_log),
            )
            for pe in self.pes
        )
        return ReplayResults(
            model=self.trace.model,
            topology=self.config.topology,
            flow_control=self.config.flow_control,
            completed=self.cp.done,
            makespan_cycles=makespan,
            noc_stall_cycles=sum(pe.stall_cycles for pe in self.pes),
            commands_sent=self.cp.commands_sent,
            packets_delivered=self.network.stats.packets_delivered,
            flits_delivered=self.network.stats.flits_delivered,
            per_pe=per_pe,
        )


def replay_trace_on_fabric(trace: AccelTrace, config: FabricConfig,
                           placement: Placement | None = None,
                           max_cycles: int = DEFAULT_MAX_CYCLES,
                           ) -> ReplayResults:
    """Convenience: build a :class:`ReplaySystem` and run it."""
    return ReplaySystem(trace, config, placement).run(max_cycles)


# -- mapping sweeps ------------------------------------------------------

@dataclass(frozen=True)
class ReplayPoint:
    """Picklable spec of one replay measurement.

    The trace arrives either by file (``trace_path``) or regenerated in
    the worker from ``(model, pes, mems, seed)`` — both deterministic,
    so equal specs give equal results in any process.
    """

    network: FabricConfig = field(default_factory=FabricConfig)
    model: str = "llm-decode"
    trace_path: str | None = None
    pes: int = 4
    mems: int = 2
    seed: int = 0
    placement: Placement | None = None
    max_cycles: int = DEFAULT_MAX_CYCLES


def evaluate_replay_point(point: ReplayPoint) -> dict:
    """Worker-side evaluation of one :class:`ReplayPoint`."""
    if point.trace_path is not None:
        trace = load_accel_trace(point.trace_path)
    else:
        trace = generate_trace(point.model, pes=point.pes,
                               mems=point.mems, seed=point.seed)
    results = replay_trace_on_fabric(trace, point.network,
                                     point.placement, point.max_cycles)
    return results.to_dict()


def measure_replay_points(points: list[ReplayPoint],
                          workers: int | None = None) -> list[dict]:
    """Evaluate replay points, in worker processes when asked.

    Results come back in ``points`` order and are identical to the
    serial evaluation (see :func:`repro.analysis.parallel.parallel_map`).
    """
    from repro.analysis.parallel import parallel_map
    return parallel_map(evaluate_replay_point, points, workers)


def sweep_placements(config: FabricConfig, model: str = "llm-decode",
                     trace_path: str | None = None, pes: int = 4,
                     mems: int = 2, seed: int = 0,
                     offsets: tuple[int, ...] = (0, 1, 2, 3),
                     workers: int | None = None,
                     max_cycles: int = DEFAULT_MAX_CYCLES) -> list[dict]:
    """Replay the same trace under rotated placements; one dict per
    offset (the replay results plus the ``"offset"`` key).

    Rotation slides the whole CP/PE/memory arrangement around the
    fabric, exposing how much of the makespan is mapping-induced.
    """
    if trace_path is not None:
        shape = load_accel_trace(trace_path)
        pes, mems = shape.pes, shape.mems
    base = default_placement(config.ports, pes, mems)
    points = [
        ReplayPoint(network=config, model=model, trace_path=trace_path,
                    pes=pes, mems=mems, seed=seed,
                    placement=base.rotated(offset, config.ports),
                    max_cycles=max_cycles)
        for offset in offsets
    ]
    results = measure_replay_points(points, workers)
    return [{"offset": offset, **result}
            for offset, result in zip(offsets, results)]
