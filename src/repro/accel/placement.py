"""Picklable placement specs: which fabric node hosts which endpoint.

A :class:`Placement` maps the accelerator roles — one control processor,
``P`` processing elements, ``M`` memory channels — onto distinct node
indices of a built fabric. It is plain frozen data, so mapping sweeps
ship placements to worker processes unchanged and checkpoints hash them
stably (:func:`repro.analysis.parallel.spec_hash`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Placement:
    """Node indices of the control processor, the PEs and the memories."""

    cp: int
    pes: tuple[int, ...]
    mems: tuple[int, ...]

    def __post_init__(self):
        if not self.pes or not self.mems:
            raise ConfigurationError(
                "a placement needs >= 1 PE and >= 1 memory node")
        nodes = (self.cp, *self.pes, *self.mems)
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError(
                f"placement nodes must be distinct, got {nodes}")
        if min(nodes) < 0:
            raise ConfigurationError("placement nodes must be >= 0")

    @property
    def nodes(self) -> tuple[int, ...]:
        return (self.cp, *self.pes, *self.mems)

    def check_fits(self, ports: int) -> None:
        """Reject a placement naming nodes the fabric does not have."""
        if max(self.nodes) >= ports:
            raise ConfigurationError(
                f"placement uses node {max(self.nodes)} but the fabric "
                f"has only {ports} endpoints"
            )

    def rotated(self, offset: int, ports: int) -> "Placement":
        """The placement shifted by ``offset`` nodes (mod ``ports``).

        Rotation preserves distinctness, so it is the cheap way to sweep
        mappings: the same workload lands on every alignment of the
        fabric without re-deriving a placement from scratch.
        """
        if ports < len(self.nodes):
            raise ConfigurationError(
                f"cannot rotate a {len(self.nodes)}-endpoint placement "
                f"on a {ports}-port fabric"
            )
        return Placement(
            cp=(self.cp + offset) % ports,
            pes=tuple((pe + offset) % ports for pe in self.pes),
            mems=tuple((mem + offset) % ports for mem in self.mems),
        )


def default_placement(ports: int, pes: int, mems: int) -> Placement:
    """CP at node 0, PEs next, memory channels at the far end.

    Putting the memories at the highest indices spreads the DMA paths
    across the fabric diameter — the honest default for a workload
    column, neither adversarial nor hand-tuned.
    """
    if ports < 1 + pes + mems:
        raise ConfigurationError(
            f"{pes} PEs + {mems} memory channels + the control processor "
            f"need >= {1 + pes + mems} endpoints, fabric has {ports}"
        )
    return Placement(
        cp=0,
        pes=tuple(range(1, 1 + pes)),
        mems=tuple(range(ports - mems, ports)),
    )
