"""The portable accelerator trace format (versioned JSONL).

A trace is a dependency graph of work on an accelerator system: compute
events (GEMM shapes lowered to cycle costs) and DMA transfers (byte sizes
lowered to flit bursts), each bound to one processing element and
predicated on earlier events. The on-disk form is JSON lines: a mandatory
header naming the schema and version (shared machinery with
:mod:`repro.traffic.trace`), then one event per line.

The format is deliberately independent of any fabric: the same file
replays on the tree, the mesh and the torus, which is what makes the
comparison table's workload column like-for-like.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.traffic.trace import (
    check_trace_header,
    iter_trace_lines,
    trace_header,
)

#: Schema name and current version of the accelerator trace format.
ACCEL_TRACE_SCHEMA = "repro.accel.trace"
ACCEL_TRACE_VERSION = 1

#: Compute events carry this kind tag; DMA transfers the other.
KIND_COMPUTE = "compute"
KIND_DMA = "dma"

#: Link word width: DMA byte counts lower to 32-bit payload words.
BYTES_PER_FLIT = 4

#: Default multiply-accumulate throughput of one PE (MACs per cycle) —
#: a 16x16 systolic tile, the scale the paper's SoC endpoints assume.
DEFAULT_MACS_PER_CYCLE = 256


def gemm_cycles(m: int, n: int, k: int,
                macs_per_cycle: int = DEFAULT_MACS_PER_CYCLE) -> int:
    """Cycle cost of an ``m x k @ k x n`` GEMM on one PE."""
    if min(m, n, k) < 1 or macs_per_cycle < 1:
        raise ConfigurationError("gemm dimensions must be >= 1")
    return max(1, math.ceil(m * n * k / macs_per_cycle))


def dma_flits(n_bytes: int) -> int:
    """Payload flits a DMA transfer of ``n_bytes`` occupies on the wire."""
    if n_bytes < 1:
        raise ConfigurationError("dma transfers must move >= 1 byte")
    return max(1, math.ceil(n_bytes / BYTES_PER_FLIT))


@dataclass(frozen=True)
class AccelEvent:
    """One node of the workload graph.

    ``kind == "compute"``: the PE is busy for ``cycles`` cycles
    (optionally annotated with the ``gemm`` shape that produced the
    cost). ``kind == "dma"``: the PE moves ``n_bytes`` to (``write``) or
    from (``read``) memory channel ``mem``. ``deps`` lists the ids of
    events that must complete first; ids of a trace are unique and deps
    only ever point backwards, so the graph is acyclic by construction.
    """

    event_id: int
    kind: str
    pe: int
    cycles: int = 0
    mem: int = 0
    direction: str = ""
    n_bytes: int = 0
    deps: tuple[int, ...] = ()
    gemm: tuple[int, int, int] | None = None

    @property
    def flits(self) -> int:
        """Payload flits of a DMA event (0 for compute)."""
        return dma_flits(self.n_bytes) if self.kind == KIND_DMA else 0


@dataclass(frozen=True)
class AccelTrace:
    """A validated workload graph plus the system shape it targets."""

    model: str
    pes: int
    mems: int
    seed: int
    events: tuple[AccelEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.pes < 1 or self.mems < 1:
            raise ConfigurationError(
                f"a trace needs >= 1 PE and >= 1 memory channel "
                f"(got pes={self.pes}, mems={self.mems})"
            )
        seen: set[int] = set()
        for event in self.events:
            if event.event_id in seen:
                raise ConfigurationError(
                    f"duplicate event id {event.event_id}")
            if not 0 <= event.pe < self.pes:
                raise ConfigurationError(
                    f"event {event.event_id}: pe {event.pe} out of range "
                    f"for {self.pes} PEs")
            for dep in event.deps:
                if dep not in seen:
                    raise ConfigurationError(
                        f"event {event.event_id}: dep {dep} does not "
                        f"name an earlier event")
            if event.kind == KIND_COMPUTE:
                if event.cycles < 1:
                    raise ConfigurationError(
                        f"event {event.event_id}: compute needs "
                        f"cycles >= 1")
            elif event.kind == KIND_DMA:
                if event.direction not in ("read", "write"):
                    raise ConfigurationError(
                        f"event {event.event_id}: dma direction must be "
                        f"'read' or 'write', got {event.direction!r}")
                if not 0 <= event.mem < self.mems:
                    raise ConfigurationError(
                        f"event {event.event_id}: mem {event.mem} out of "
                        f"range for {self.mems} channels")
                if event.n_bytes < 1:
                    raise ConfigurationError(
                        f"event {event.event_id}: dma needs bytes >= 1")
            else:
                raise ConfigurationError(
                    f"event {event.event_id}: unknown kind {event.kind!r}")
            seen.add(event.event_id)

    @property
    def compute_cycles_per_pe(self) -> dict[int, int]:
        """Total busy cycles each PE owes — the utilisation denominator's
        numerator (work done), independent of any fabric."""
        totals = {pe: 0 for pe in range(self.pes)}
        for event in self.events:
            if event.kind == KIND_COMPUTE:
                totals[event.pe] += event.cycles
        return totals


def save_accel_trace(trace: AccelTrace, path: str | Path) -> None:
    """Serialise a trace to versioned JSONL (header line first)."""
    with open(path, "w") as handle:
        handle.write(json.dumps(trace_header(
            ACCEL_TRACE_SCHEMA, ACCEL_TRACE_VERSION, model=trace.model,
            pes=trace.pes, mems=trace.mems, seed=trace.seed)) + "\n")
        for event in trace.events:
            record: dict = {"id": event.event_id, "kind": event.kind,
                            "pe": event.pe}
            if event.kind == KIND_COMPUTE:
                record["cycles"] = event.cycles
                if event.gemm is not None:
                    record["gemm"] = list(event.gemm)
            else:
                record["mem"] = event.mem
                record["dir"] = event.direction
                record["bytes"] = event.n_bytes
            if event.deps:
                record["deps"] = list(event.deps)
            handle.write(json.dumps(record) + "\n")


def load_accel_trace(path: str | Path) -> AccelTrace:
    """Load and validate a trace written by :func:`save_accel_trace`.

    Unlike the injection-trace loader the header is mandatory here (the
    format never existed without one); a missing or mismatched header is
    a loud :class:`ConfigurationError` naming the file and the
    found/expected version.
    """
    header: dict | None = None
    events: list[AccelEvent] = []
    for line_number, record in iter_trace_lines(path):
        if header is None:
            if "schema" not in record:
                raise ConfigurationError(
                    f"{path}: missing accel trace header (expected a "
                    f"first line naming schema {ACCEL_TRACE_SCHEMA!r} "
                    f"version {ACCEL_TRACE_VERSION})"
                )
            check_trace_header(record, path, ACCEL_TRACE_SCHEMA,
                               ACCEL_TRACE_VERSION)
            header = record
            continue
        try:
            kind = record["kind"]
            gemm = record.get("gemm")
            events.append(AccelEvent(
                event_id=record["id"], kind=kind, pe=record["pe"],
                cycles=record.get("cycles", 0),
                mem=record.get("mem", 0),
                direction=record.get("dir", ""),
                n_bytes=record.get("bytes", 0),
                deps=tuple(record.get("deps", ())),
                gemm=tuple(gemm) if gemm is not None else None,
            ))
        except KeyError as exc:
            raise ConfigurationError(
                f"{path}: bad trace line {line_number}: missing key {exc}"
            ) from exc
    if header is None:
        raise ConfigurationError(f"{path}: empty accel trace file")
    try:
        return AccelTrace(
            model=header.get("model", "unknown"),
            pes=header["pes"], mems=header["mems"],
            seed=header.get("seed", 0), events=tuple(events),
        )
    except KeyError as exc:
        raise ConfigurationError(
            f"{path}: accel trace header missing key {exc}"
        ) from exc
