"""Offline, torch-free trace generators for three canned models.

Each generator lowers a model's dataflow to the trace schema with
seeded determinism (``random.Random(seed)`` only — the same arguments
always produce byte-identical trace files). Sizes are deliberately
modest: the traces model the *shape* of the traffic — phases of compute
silence punctuated by DMA bursts, cross-PE barriers — at a scale every
registered fabric replays in seconds.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.accel.trace import (
    AccelEvent,
    AccelTrace,
    KIND_COMPUTE,
    KIND_DMA,
    gemm_cycles,
)


class _TraceBuilder:
    """Monotonic ids + round-robin memory striping for the generators."""

    def __init__(self, mems: int):
        self.mems = mems
        self.events: list[AccelEvent] = []
        self._next_mem = 0

    def _new_id(self) -> int:
        return len(self.events)

    def stripe(self) -> int:
        mem = self._next_mem
        self._next_mem = (self._next_mem + 1) % self.mems
        return mem

    def compute(self, pe: int, cycles: int, deps: tuple[int, ...] = (),
                gemm: tuple[int, int, int] | None = None) -> int:
        event = AccelEvent(event_id=self._new_id(), kind=KIND_COMPUTE,
                           pe=pe, cycles=cycles, deps=deps, gemm=gemm)
        self.events.append(event)
        return event.event_id

    def dma(self, pe: int, mem: int, direction: str, n_bytes: int,
            deps: tuple[int, ...] = ()) -> int:
        event = AccelEvent(event_id=self._new_id(), kind=KIND_DMA,
                           pe=pe, mem=mem, direction=direction,
                           n_bytes=n_bytes, deps=deps)
        self.events.append(event)
        return event.event_id


def llm_decode_trace(pes: int = 4, mems: int = 2, seed: int = 0,
                     layers: int = 2, d_model: int = 64) -> AccelTrace:
    """One autoregressive decode step of a tensor-parallel LLM.

    Per layer, every PE reads its weight tile and a KV-cache slice
    (the slice length jitters with the seed, standing in for the growing
    sequence), runs the sharded GEMV, and writes its activation shard;
    the next layer's reads wait on *all* shards (the all-gather barrier),
    so the trace alternates busy bursts with fabric-wide sync points.
    """
    if d_model % pes:
        raise ConfigurationError(
            f"d_model={d_model} must divide over {pes} PEs")
    rng = random.Random(seed)
    build = _TraceBuilder(mems)
    barrier: tuple[int, ...] = ()
    for _ in range(layers):
        writes = []
        for pe in range(pes):
            weights = build.dma(pe, build.stripe(), "read", 2 * d_model,
                                deps=barrier)
            kv_rows = rng.randint(8, 24)
            kv = build.dma(pe, build.stripe(), "read",
                           2 * kv_rows * (d_model // pes), deps=barrier)
            shape = (1, d_model // pes, d_model)
            matvec = build.compute(pe, gemm_cycles(*shape),
                                   deps=(weights, kv), gemm=shape)
            writes.append(build.dma(pe, build.stripe(), "write",
                                    2 * d_model // pes, deps=(matvec,)))
        barrier = tuple(writes)
    return AccelTrace(model="llm-decode", pes=pes, mems=mems, seed=seed,
                      events=tuple(build.events))


def tiled_gemm_trace(pes: int = 4, mems: int = 2, seed: int = 0,
                     m: int = 128, n: int = 128, k: int = 128,
                     tile: int = 32) -> AccelTrace:
    """An ``m x k @ k x n`` GEMM tiled over the PEs.

    Output tiles are dealt round-robin in a seed-shuffled order; each
    tile reads an A row-panel and a B column-panel, computes, and writes
    the C tile — independent chains with no cross-PE barrier, the
    embarrassingly parallel end of the workload spectrum.
    """
    if m % tile or n % tile:
        raise ConfigurationError(
            f"tile={tile} must divide m={m} and n={n}")
    rng = random.Random(seed)
    build = _TraceBuilder(mems)
    tiles = [(i, j) for i in range(m // tile) for j in range(n // tile)]
    rng.shuffle(tiles)
    for index, (_i, _j) in enumerate(tiles):
        pe = index % pes
        a_panel = build.dma(pe, build.stripe(), "read", 2 * tile)
        b_panel = build.dma(pe, build.stripe(), "read", 2 * tile)
        shape = (tile, tile, k)
        matmul = build.compute(pe, gemm_cycles(*shape),
                               deps=(a_panel, b_panel), gemm=shape)
        build.dma(pe, build.stripe(), "write", 4 * tile, deps=(matmul,))
    return AccelTrace(model="gemm", pes=pes, mems=mems, seed=seed,
                      events=tuple(build.events))


def param_server_trace(pes: int = 4, mems: int = 2, seed: int = 0,
                       steps: int = 3, param_bytes: int = 1024
                       ) -> AccelTrace:
    """Synchronous data-parallel training against a parameter server.

    Per step, each worker PE computes its gradients (cost jittered by
    the seed — stragglers included), pushes its shard to the server
    channels, then pulls fresh parameters once *every* worker has pushed
    — the classic all-to-one incast followed by a one-to-all fan-out.
    """
    rng = random.Random(seed)
    build = _TraceBuilder(mems)
    shard = max(1, param_bytes // pes)
    pulls: tuple[int, ...] = ()
    for _ in range(steps):
        pushes = []
        grads = []
        for pe in range(pes):
            cost = rng.randint(200, 400)
            grads.append(build.compute(pe, cost, deps=pulls))
        for pe in range(pes):
            pushes.append(build.dma(pe, build.stripe(), "write", shard,
                                    deps=(grads[pe],)))
        barrier = tuple(pushes)
        pulls = tuple(
            build.dma(pe, build.stripe(), "read", shard, deps=barrier)
            for pe in range(pes)
        )
    return AccelTrace(model="param-server", pes=pes, mems=mems, seed=seed,
                      events=tuple(build.events))


#: Registered canned models, by CLI name.
MODELS = {
    "llm-decode": llm_decode_trace,
    "gemm": tiled_gemm_trace,
    "param-server": param_server_trace,
}
MODEL_NAMES = tuple(MODELS)


def generate_trace(model: str, pes: int = 4, mems: int = 2, seed: int = 0,
                   **kwargs) -> AccelTrace:
    """Build a canned model's trace by registered name."""
    if model not in MODELS:
        raise ConfigurationError(
            f"unknown model {model!r}; registered: {', '.join(MODELS)}")
    return MODELS[model](pes=pes, mems=mems, seed=seed, **kwargs)
