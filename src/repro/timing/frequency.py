"""Maximum-frequency models: Fig. 7's pipeline curve and network solvers.

The paper's Fig. 7 plots achievable clock frequency against the wire length
between two pipeline stages, from back-annotated layout. Our model::

    Thalf(L) = Thalf_base + 2 * t_w(L)

``Thalf_base`` = 277.78 ps (the published 220 ps of flow-control logic and
registers plus control-signal buffering, pinned by the published 1.8 GHz
head-to-head speed). The factor 2: during each phase the handshake crosses
the link wire once in each direction (forwarded clock+data one way, accept
the other way), so one full wire flight is paid per phase in each
half-period budget. ``t_w`` is the calibrated buffered-wire delay.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.tech.flipflop import RegisterTiming
from repro.tech.technology import Technology, TECH_90NM
from repro.timing.validator import ChannelSpec, channels_max_frequency
from repro.units import frequency_from_half_period, half_period_ps


def pipeline_half_period(length_mm: float,
                         tech: Technology = TECH_90NM) -> float:
    """Minimum half period (ps) of a pipeline with ``length_mm`` segments."""
    if length_mm < 0.0:
        raise ConfigurationError(f"length must be >= 0, got {length_mm}")
    return (
        tech.pipeline_base_half_period_ps
        + 2.0 * tech.buffered_wire.delay(length_mm)
    )


def pipeline_max_frequency(length_mm: float,
                           tech: Technology = TECH_90NM) -> float:
    """Achievable clock frequency (GHz) vs segment length — Fig. 7's curve."""
    return frequency_from_half_period(pipeline_half_period(length_mm, tech))


def max_segment_length(frequency: float,
                       tech: Technology = TECH_90NM) -> float:
    """Longest pipeline segment (mm) sustaining ``frequency`` GHz.

    Inverse of :func:`pipeline_max_frequency`. At the router speeds this
    reproduces the paper's optimal segment lengths: 0.6 mm at 1.4 GHz
    (3x3 routers) and 0.9 mm at 1.2 GHz (5x5 routers).
    """
    budget = half_period_ps(frequency) - tech.pipeline_base_half_period_ps
    if budget < 0.0:
        raise ConfigurationError(
            f"{frequency} GHz exceeds the zero-length pipeline speed"
        )
    return tech.buffered_wire.length_for_delay(budget / 2.0)


def router_max_frequency(ports: int, tech: Technology = TECH_90NM,
                         pipeline_depth: int = 1) -> float:
    """Maximum clock frequency (GHz) of a k-port router.

    ``pipeline_depth=1`` is the single-cycle router: the whole
    route+arbitrate+traverse path fits one half period. A depth-N router
    splits that logic across N stages, so each stage covers ``1/N`` of
    the critical path **plus one stage-register overhead** (the same
    ``pipeline_overhead_ps`` the link-pipeline model charges: register
    setup/clk-to-q and control buffering). Speedup therefore saturates —
    the achievable half period floors at the register overhead, exactly
    as in the link curve's zero-length limit.
    """
    if pipeline_depth < 1:
        raise ConfigurationError("pipeline_depth must be >= 1")
    half = tech.router_half_period_ps(ports)
    if pipeline_depth > 1:
        half = (half / pipeline_depth
                + (1.0 - 1.0 / pipeline_depth) * tech.pipeline_overhead_ps)
    return frequency_from_half_period(half)


def network_max_frequency(channel_specs: list[ChannelSpec],
                          router_port_counts: list[int],
                          register: RegisterTiming | None = None,
                          tech: Technology = TECH_90NM) -> float:
    """Max safe frequency of a whole network (GHz).

    The binding constraint is either a link channel (skew windows) or a
    router's internal critical path. ``register`` defaults to the
    technology's flip-flop.
    """
    if register is None:
        register = tech.register
    bounds = []
    if channel_specs:
        bounds.append(channels_max_frequency(channel_specs, register))
    for ports in router_port_counts:
        bounds.append(router_max_frequency(ports, tech))
    if not bounds:
        raise ConfigurationError("network has neither channels nor routers")
    return min(bounds)
