"""Link-timing analysis: the paper's Section 4 made executable.

This package implements equations (1)-(7) of the paper (downstream and
upstream setup/hold constraints for mesochronous alternating-edge links), a
network-wide validator, and closed-form maximum-frequency solvers (every
constraint is monotone in the clock period, which is exactly the paper's
"graceful degradation / correct by construction" argument).
"""

from repro.timing.link_timing import (
    downstream_window,
    upstream_window,
    downstream_slack,
    upstream_slack,
    min_half_period_downstream,
    min_half_period_upstream,
    synchronous_hold_margin,
)
from repro.timing.constraints import (
    CheckKind,
    Direction,
    TimingCheck,
    TimingReport,
)
from repro.timing.validator import ChannelSpec, validate_channels, channel_min_half_period
from repro.timing.frequency import (
    pipeline_half_period,
    pipeline_max_frequency,
    max_segment_length,
    network_max_frequency,
)

__all__ = [
    "downstream_window",
    "upstream_window",
    "downstream_slack",
    "upstream_slack",
    "min_half_period_downstream",
    "min_half_period_upstream",
    "synchronous_hold_margin",
    "CheckKind",
    "Direction",
    "TimingCheck",
    "TimingReport",
    "ChannelSpec",
    "validate_channels",
    "channel_min_half_period",
    "pipeline_half_period",
    "pipeline_max_frequency",
    "max_segment_length",
    "network_max_frequency",
]
