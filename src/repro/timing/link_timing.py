"""Equations (1)-(7) of the paper: alternating-edge link timing.

Terminology (paper Section 4, Figs. 2 and 3). A producing register A and a
consuming register B sit at opposite ends of a link and are clocked at
*alternating edges*, so a transfer has half a clock period, ``Thalf``, from
launch to capture. The clock is physically forwarded along the link with
delay ``t_clk``.

* **Downstream** transfer: the signal travels in the same direction as the
  clock, so it experiences *positive* clock skew. With
  ``delta_diff = t_data - t_clk`` (difference between data and clock path
  delay), eq. (3) of the paper bounds the tolerable window::

      thold - Thalf - tclkQ  <  delta_diff  <  Thalf - tclkQ - tsetup

* **Upstream** transfer: the signal travels *against* the clock (negative
  skew). With ``delta_sum = t_signal + t_clk``, eqs. (5)-(6) give::

      thold - Thalf - tclkQ  <  delta_sum  <  Thalf - tclkQ - tsetup

  The lower (hold) bound is negative for any realistic register, so the
  setup bound (5) is the binding one — the paper's remark after eq. (6).

Both windows *widen without bound as Thalf grows*: this is the paper's core
timing-safety claim, "the skew tolerance can be made arbitrarily large by
lowering the clock frequency". By contrast, a conventional same-edge
synchronous transfer has a hold constraint independent of the period — see
:func:`synchronous_hold_margin` — which is why a skew-broken globally
synchronous chip cannot be rescued by slowing the clock, but an IC-NoC can.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.tech.flipflop import RegisterTiming


def _check_half_period(half_period: float) -> None:
    if half_period <= 0.0:
        raise ConfigurationError(f"half period must be positive, got {half_period}")


def downstream_window(register: RegisterTiming,
                      half_period: float) -> tuple[float, float]:
    """Tolerable (min, max) of ``delta_diff = t_data - t_clk`` — eq. (3).

    At 1 GHz with the paper's 90 nm flip-flop this returns
    (-540.0, 380.0) ps, matching eq. (4).
    """
    _check_half_period(half_period)
    low = register.t_hold - half_period - register.t_clk_q
    high = half_period - register.t_clk_q - register.t_setup
    return (low, high)


def upstream_window(register: RegisterTiming,
                    half_period: float) -> tuple[float, float]:
    """Tolerable (min, max) of ``delta_sum = t_signal + t_clk`` — eqs. (5)-(6).

    At 1 GHz with the paper's flip-flop the upper bound is 380 ps (eq. 7)
    and the lower bound is negative (hence never binding for real wires).
    """
    _check_half_period(half_period)
    low = register.t_hold - half_period - register.t_clk_q
    high = half_period - register.t_clk_q - register.t_setup
    return (low, high)


def downstream_slack(register: RegisterTiming, half_period: float,
                     delta_diff: float) -> tuple[float, float]:
    """(setup_slack, hold_slack) in ps for a downstream transfer.

    Positive slack means the constraint is met.
    """
    low, high = downstream_window(register, half_period)
    return (high - delta_diff, delta_diff - low)


def upstream_slack(register: RegisterTiming, half_period: float,
                   delta_sum: float) -> tuple[float, float]:
    """(setup_slack, hold_slack) in ps for an upstream transfer."""
    low, high = upstream_window(register, half_period)
    return (high - delta_sum, delta_sum - low)


def min_half_period_downstream(register: RegisterTiming,
                               delta_diff: float) -> float:
    """Smallest half period making a downstream transfer safe.

    Derived by solving both sides of eq. (3) for ``Thalf``:
    setup requires ``Thalf > tclkQ + tsetup + delta_diff``; hold requires
    ``Thalf > thold - tclkQ - delta_diff``. A finite answer always exists —
    the graceful-degradation property.
    """
    setup_side = register.t_clk_q + register.t_setup + delta_diff
    hold_side = register.t_hold - register.t_clk_q - delta_diff
    return max(setup_side, hold_side, 0.0)


def min_half_period_upstream(register: RegisterTiming,
                             delta_sum: float) -> float:
    """Smallest half period making an upstream transfer safe (eqs. 5-6)."""
    setup_side = register.t_clk_q + register.t_setup + delta_sum
    hold_side = register.t_hold - register.t_clk_q - delta_sum
    return max(setup_side, hold_side, 0.0)


def synchronous_hold_margin(register: RegisterTiming, skew: float,
                            data_min_delay: float = 0.0) -> float:
    """Hold margin of a conventional *same-edge* synchronous transfer.

    For launch and capture registers on the same clock edge with the capture
    clock arriving ``skew`` ps late, the hold condition is::

        t_contamination + data_min_delay  >  thold + skew

    (using contamination delay as the earliest output change; the paper's
    simplified model would use tclk->Q). The margin returned is
    ``t_contamination + data_min_delay - thold - skew`` — crucially
    **independent of the clock period**, so a negative margin cannot be
    fixed by slowing the clock. This is the failure mode the IC-NoC's
    alternating-edge discipline eliminates.
    """
    if data_min_delay < 0.0:
        raise ConfigurationError("data_min_delay must be >= 0")
    earliest_change = register.t_contamination + data_min_delay
    return earliest_change - register.t_hold - skew


def is_hold_fixable_by_frequency(register: RegisterTiming, skew: float,
                                 data_min_delay: float = 0.0) -> bool:
    """Whether a same-edge transfer with this skew can ever be made safe.

    Returns True iff the hold margin is already non-negative: frequency
    scaling cannot help a same-edge hold violation.
    """
    return synchronous_hold_margin(register, skew, data_min_delay) >= 0.0
