"""Timing-check records and reports produced by the validator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Direction(enum.Enum):
    """Signal direction relative to the forwarded clock."""

    DOWNSTREAM = "downstream"  # with the clock (positive skew)
    UPSTREAM = "upstream"      # against the clock (negative skew)


class CheckKind(enum.Enum):
    SETUP = "setup"
    HOLD = "hold"


@dataclass(frozen=True)
class TimingCheck:
    """One evaluated constraint on one channel.

    Attributes:
        channel: name of the checked channel (e.g. ``"link[3].down.data"``).
        direction: whether the signal runs with or against the clock.
        kind: setup or hold.
        slack_ps: positive means the constraint is met.
        skew_ps: the delta_diff / delta_sum value the check evaluated.
        bound_ps: the window bound the skew was compared against.
    """

    channel: str
    direction: Direction
    kind: CheckKind
    slack_ps: float
    skew_ps: float
    bound_ps: float

    @property
    def passed(self) -> bool:
        return self.slack_ps >= 0.0

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status} {self.channel} {self.direction.value}/{self.kind.value}: "
            f"skew={self.skew_ps:.1f} ps bound={self.bound_ps:.1f} ps "
            f"slack={self.slack_ps:.1f} ps"
        )


@dataclass
class TimingReport:
    """All checks for a network at one clock frequency."""

    frequency_ghz: float
    checks: list[TimingCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def violations(self) -> list[TimingCheck]:
        return [check for check in self.checks if not check.passed]

    @property
    def worst_slack_ps(self) -> float:
        if not self.checks:
            raise ValueError("report contains no checks")
        return min(check.slack_ps for check in self.checks)

    def worst_check(self) -> TimingCheck:
        if not self.checks:
            raise ValueError("report contains no checks")
        return min(self.checks, key=lambda check: check.slack_ps)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"Timing report @ {self.frequency_ghz:.3f} GHz: "
            f"{len(self.checks)} checks, "
            f"{len(self.violations)} violations, "
            f"worst slack {self.worst_slack_ps:.1f} ps"
        ]
        for check in sorted(self.checks, key=lambda c: c.slack_ps)[:10]:
            lines.append("  " + check.describe())
        return "\n".join(lines)
