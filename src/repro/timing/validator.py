"""Network-wide timing validation.

The NoC layer describes each physical pipeline segment as a
:class:`ChannelSpec` carrying the forwarded-clock flight time plus the
flight times of the signals crossing that segment. Each signal is checked
against the window matching its direction *relative to the clock* — the
handshake always has signals in both directions irrespective of data flow
(paper Section 5), so every segment yields both a downstream (delta_diff)
and an upstream (delta_sum) pair of setup/hold checks.

Because every constraint is monotone in the clock period (see
:mod:`repro.timing.link_timing`), the maximum safe frequency over a set of
channels has the closed form ``min over checks of f_max(check)``; no search
is required. This *is* the paper's scalability argument: timing integrity is
decided channel-by-channel from purely local delays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.flipflop import RegisterTiming
from repro.timing.constraints import CheckKind, Direction, TimingCheck, TimingReport
from repro.timing.link_timing import (
    downstream_window,
    upstream_window,
    min_half_period_downstream,
    min_half_period_upstream,
)
from repro.units import frequency_from_half_period, half_period_ps


@dataclass(frozen=True)
class ChannelSpec:
    """Measured delays of one unidirectional handshake channel.

    A channel runs either with the forwarded clock (``downstream=True``:
    data/valid ride with the clock, accept returns against it) or against it
    (``downstream=False``: data/valid fight the clock, accept rides with
    it). Links in the IC-NoC always come in such pairs (Fig. 6).

    Attributes:
        name: identifier used in reports.
        clock_delay_ps: forwarded-clock flight time across the segment
            (always measured in the clock's own direction).
        data_delay_ps: data/valid flight time producer -> consumer.
        accept_delay_ps: accept flight time consumer -> producer.
        downstream: True if data flows in the clock's direction.
    """

    name: str
    clock_delay_ps: float
    data_delay_ps: float
    accept_delay_ps: float
    downstream: bool = True

    def __post_init__(self) -> None:
        for field_name in ("clock_delay_ps", "data_delay_ps", "accept_delay_ps"):
            if getattr(self, field_name) < 0.0:
                raise ConfigurationError(f"{field_name} must be >= 0")

    @property
    def with_clock_skew(self) -> float:
        """delta_diff of eq. (3) for the signal riding with the clock."""
        signal = self.data_delay_ps if self.downstream else self.accept_delay_ps
        return signal - self.clock_delay_ps

    @property
    def against_clock_skew(self) -> float:
        """delta_sum of eq. (5) for the signal fighting the clock."""
        signal = self.accept_delay_ps if self.downstream else self.data_delay_ps
        return signal + self.clock_delay_ps


def channel_checks(spec: ChannelSpec, register: RegisterTiming,
                   half_period: float) -> list[TimingCheck]:
    """Evaluate the four constraints of one channel at one half period."""
    down_low, down_high = downstream_window(register, half_period)
    up_low, up_high = upstream_window(register, half_period)
    delta_diff = spec.with_clock_skew
    delta_sum = spec.against_clock_skew
    return [
        TimingCheck(
            channel=spec.name, direction=Direction.DOWNSTREAM,
            kind=CheckKind.SETUP, slack_ps=down_high - delta_diff,
            skew_ps=delta_diff, bound_ps=down_high,
        ),
        TimingCheck(
            channel=spec.name, direction=Direction.DOWNSTREAM,
            kind=CheckKind.HOLD, slack_ps=delta_diff - down_low,
            skew_ps=delta_diff, bound_ps=down_low,
        ),
        TimingCheck(
            channel=spec.name, direction=Direction.UPSTREAM,
            kind=CheckKind.SETUP, slack_ps=up_high - delta_sum,
            skew_ps=delta_sum, bound_ps=up_high,
        ),
        TimingCheck(
            channel=spec.name, direction=Direction.UPSTREAM,
            kind=CheckKind.HOLD, slack_ps=delta_sum - up_low,
            skew_ps=delta_sum, bound_ps=up_low,
        ),
    ]


def validate_channels(specs: list[ChannelSpec], register: RegisterTiming,
                      frequency: float) -> TimingReport:
    """Check every channel at ``frequency`` GHz and collect a report."""
    half_period = half_period_ps(frequency)
    report = TimingReport(frequency_ghz=frequency)
    for spec in specs:
        report.checks.extend(channel_checks(spec, register, half_period))
    return report


def channel_min_half_period(spec: ChannelSpec,
                            register: RegisterTiming) -> float:
    """Smallest half period at which all four checks of a channel pass."""
    return max(
        min_half_period_downstream(register, spec.with_clock_skew),
        min_half_period_upstream(register, spec.against_clock_skew),
    )


def channels_max_frequency(specs: list[ChannelSpec],
                           register: RegisterTiming) -> float:
    """Highest clock frequency (GHz) at which every channel is timing-safe.

    Closed-form: the binding channel is the one with the largest minimum
    half period. Raises if ``specs`` is empty.
    """
    if not specs:
        raise ConfigurationError("no channels to analyse")
    worst = max(channel_min_half_period(spec, register) for spec in specs)
    if worst <= 0.0:
        raise ConfigurationError("degenerate channel set: no positive bound")
    return frequency_from_half_period(worst)
