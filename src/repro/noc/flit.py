"""Flits: the unit of link-level transfer.

The demonstrator network has a 32-bit data path; a packet is serialised into
head/body/tail flits. The head flit carries the routing information (the
destination leaf address), as wormhole routing requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class FlitKind(enum.Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    SINGLE = "single"  # single-flit packet: head and tail at once


@dataclass(frozen=True)
class Flit:
    """One 32-bit word on the network.

    Attributes:
        kind: position within the packet.
        src: source leaf address.
        dest: destination leaf address (routing field, head flits).
        packet_id: unique id of the packet this flit belongs to.
        seq: position of this flit within its packet (0 = head).
        payload: the 32-bit data word.
    """

    kind: FlitKind
    src: int
    dest: int
    packet_id: int
    seq: int
    payload: int = 0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dest < 0:
            raise ConfigurationError("flit addresses must be >= 0")
        if self.seq < 0:
            raise ConfigurationError("flit seq must be >= 0")
        if not 0 <= self.payload < 2 ** 32:
            raise ConfigurationError("payload must fit in 32 bits")
        if self.kind in (FlitKind.HEAD, FlitKind.SINGLE) and self.seq != 0:
            raise ConfigurationError("head flit must have seq 0")

    @property
    def is_head(self) -> bool:
        """True for flits that open a packet (carry routing info)."""
        return self.kind in (FlitKind.HEAD, FlitKind.SINGLE)

    @property
    def is_tail(self) -> bool:
        """True for flits that close a packet (release wormhole locks)."""
        return self.kind in (FlitKind.TAIL, FlitKind.SINGLE)

    def __str__(self) -> str:
        return (f"{self.kind.value}[pkt{self.packet_id} "
                f"{self.src}->{self.dest} #{self.seq}]")
