"""Tree topologies: binary (3x3 routers) and quad (5x5 routers).

The clock distribution requires a tree — "no converging paths are allowed
in the network" (Section 3). A :class:`TreeTopology` describes the routers,
the leaves (network ports), and the parent/child relations; routing and
hop-count analysis live here because both are purely structural.

Addressing: leaves are numbered 0..N-1 left to right; every router covers a
contiguous leaf range, so the routing decision at a router is "is the
destination in one of my children's ranges? then down that child, else up".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError

#: Port index of the parent link on every router (children follow).
PARENT_PORT = 0


@dataclass(frozen=True)
class RouterNode:
    """One router of the tree.

    Attributes:
        index: router id, 0 = root, breadth-first order.
        level: depth from the root (root = 0).
        leaf_range: (first, last+1) leaf addresses under this router.
        parent: router id of the parent, None for the root.
        children: router ids (internal levels) or leaf addresses (last
            level), in left-to-right order.
        children_are_leaves: whether ``children`` holds leaf addresses.
    """

    index: int
    level: int
    leaf_range: tuple[int, int]
    parent: int | None
    children: tuple[int, ...]
    children_are_leaves: bool

    @property
    def ports(self) -> int:
        """Physical port count: children plus the parent link (root has
        no parent, but keeps the port for symmetry with the paper's 3x3 /
        5x5 naming — it is simply left unconnected)."""
        return len(self.children) + 1


class TreeTopology:
    """A complete arity^depth tree of routers with N = arity^depth leaves."""

    def __init__(self, leaves: int, arity: int = 2):
        if arity < 2:
            raise TopologyError(f"arity must be >= 2, got {arity}")
        if leaves < arity:
            raise TopologyError(f"need >= {arity} leaves, got {leaves}")
        depth = 0
        count = 1
        while count < leaves:
            count *= arity
            depth += 1
        if count != leaves:
            raise TopologyError(
                f"leaves must be a power of arity: {leaves} != {arity}^k"
            )
        self.leaves = leaves
        self.arity = arity
        self.depth = depth
        self.routers: list[RouterNode] = []
        self._build()

    def _build(self) -> None:
        # Router levels 0..depth-1; level l has arity^l routers; routers at
        # level depth-1 connect to leaves.
        index = 0
        level_start = {0: 0}
        for level in range(self.depth):
            level_start[level + 1] = level_start[level] + self.arity ** level
        for level in range(self.depth):
            routers_here = self.arity ** level
            leaves_per = self.leaves // routers_here
            for pos in range(routers_here):
                first_leaf = pos * leaves_per
                is_last_level = level == self.depth - 1
                if is_last_level:
                    children = tuple(first_leaf + i for i in range(self.arity))
                else:
                    child_base = level_start[level + 1] + pos * self.arity
                    children = tuple(child_base + i for i in range(self.arity))
                parent = None
                if level > 0:
                    parent = level_start[level - 1] + pos // self.arity
                self.routers.append(RouterNode(
                    index=index, level=level,
                    leaf_range=(first_leaf, first_leaf + leaves_per),
                    parent=parent, children=children,
                    children_are_leaves=is_last_level,
                ))
                index += 1

    # -- structure queries ----------------------------------------------

    @property
    def router_count(self) -> int:
        """(N-1)/(arity-1) routers for N leaves."""
        return len(self.routers)

    @property
    def router_ports(self) -> int:
        """Port count of every router: 3 for binary, 5 for quad."""
        return self.arity + 1

    def router(self, index: int) -> RouterNode:
        if not 0 <= index < len(self.routers):
            raise TopologyError(f"unknown router {index}")
        return self.routers[index]

    def leaf_router(self, leaf: int) -> RouterNode:
        """The last-level router a leaf hangs off."""
        self._check_leaf(leaf)
        routers_last = self.arity ** (self.depth - 1)
        first_last = len(self.routers) - routers_last
        return self.routers[first_last + leaf // self.arity]

    def _check_leaf(self, leaf: int) -> None:
        if not 0 <= leaf < self.leaves:
            raise TopologyError(f"unknown leaf {leaf}")

    def child_port_for_leaf(self, router: RouterNode, leaf: int) -> int:
        """Which port of ``router`` leads toward ``leaf``.

        Returns PARENT_PORT if the leaf is outside the router's range.
        """
        first, end = router.leaf_range
        if not first <= leaf < end:
            return PARENT_PORT
        span = (end - first) // len(router.children)
        return 1 + (leaf - first) // span

    # -- path/hop analysis ------------------------------------------------

    def route_path(self, src: int, dest: int) -> list[int]:
        """Router indices a packet visits from leaf src to leaf dest."""
        self._check_leaf(src)
        self._check_leaf(dest)
        if src == dest:
            return []
        # Climb from the source leaf router to the common ancestor...
        up = []
        node = self.leaf_router(src)
        while not (node.leaf_range[0] <= dest < node.leaf_range[1]):
            up.append(node.index)
            node = self.router(node.parent)
        # ...then descend to the destination leaf router.
        down = []
        while True:
            down.append(node.index)
            if node.children_are_leaves:
                break
            port = self.child_port_for_leaf(node, dest)
            node = self.router(node.children[port - 1])
        return up + down

    def hop_count(self, src: int, dest: int) -> int:
        """Routers traversed between two leaves."""
        return len(self.route_path(src, dest))

    def worst_case_hops(self) -> int:
        """Maximum routers on any leaf-to-leaf path.

        For a binary tree this is ``2*log2(N) - 1`` — the number the paper
        compares against a mesh's ``2*sqrt(N)``.
        """
        return 2 * self.depth - 1

    def average_hops_uniform(self) -> float:
        """Mean hop count over all ordered pairs of distinct leaves."""
        total = 0
        for src in range(self.leaves):
            for dest in range(self.leaves):
                if src != dest:
                    total += self.hop_count(src, dest)
        return total / (self.leaves * (self.leaves - 1))

    def sibling_pairs(self) -> list[tuple[int, int]]:
        """Leaf pairs sharing a leaf router (1-router paths)."""
        pairs = []
        for router in self.routers:
            if router.children_are_leaves:
                kids = router.children
                pairs.extend(
                    (kids[i], kids[j])
                    for i in range(len(kids))
                    for j in range(i + 1, len(kids))
                )
        return pairs
