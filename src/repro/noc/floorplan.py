"""Floorplans: embedding a topology on the chip to get physical link lengths.

The paper's demonstrator is a 10 mm x 10 mm chip with 64 ports. Binary
trees are embedded as a classic H-tree (split direction alternates level by
level, so segment lengths halve every two levels: 2.5, 2.5, 1.25, 1.25,
0.625, 0.625 mm for 64 leaves on a 10 mm die — the root links being the
2.5 mm ones the paper targets with 1.25 mm pipeline segments). Quad trees
use the recursive quadrant embedding. All lengths are Manhattan (wires are
routed rectilinearly).

The credit fabrics get their own embeddings (used by ``repro.physical``):

* :func:`grid_fabric_floorplan` — mesh and torus tiles at the natural
  grid pitch. Interior links span one tile pitch; torus wrap links are
  accounted at the *folded-torus* routing length of
  ``FOLDED_WRAP_FACTOR`` (2x) tile pitches instead of spanning the die —
  the standard folding argument bounds every wrap wire at two pitches.
  (A fully folded drawing would instead double every interior link; we
  keep natural placement so mesh and torus interior links stay directly
  comparable, and charge only the wraps the folded premium.)
* :func:`ring_fabric_floorplan` — the ring as a loop along the die
  perimeter: node ``i`` sits at arc position ``i/N`` around the
  rectangle, every link is ~``perimeter/N``.

Both store one canonical entry per bidirectional link (keyed by the
``(node, port)`` that drives it in the topology's ``links()`` order) plus
one *local stub* per node at port 0 (``LOCAL``) — the endpoint-to-router
wire, half a tile pitch — so :meth:`Floorplan.total_link_length_mm` is
the one-way clock-trunk length exactly as for the tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigurationError, TopologyError
from repro.noc.topology import TreeTopology

#: Folded-torus wrap-link length, in tile pitches (Dally & Towles' folding
#: argument: interleaving each row/column bounds wrap wires at two tiles).
FOLDED_WRAP_FACTOR = 2.0


def segment_count(length_mm: float, max_segment_mm: float) -> int:
    """Pipeline segments a link of ``length_mm`` needs so no segment
    exceeds ``max_segment_mm`` — ``ceil(length / max_segment)``, with an
    epsilon so an exact multiple does not round up, and never below 1
    (a zero-length link is still one wire).

    The single segmentation rule of the repository: the tree's link
    wiring, its zero-load latency model, the structural tree-vs-mesh
    estimator, and the credit fabrics' segmented links all call this.
    A link with ``segment_count`` segments carries ``segment_count - 1``
    intermediate register stages per direction.
    """
    if max_segment_mm <= 0.0:
        raise ConfigurationError("max_segment_mm must be positive")
    if length_mm < 0.0:
        raise ConfigurationError(f"link length must be >= 0, got {length_mm}")
    return max(1, math.ceil(length_mm / max_segment_mm - 1e-9))


@dataclass
class Floorplan:
    """Geometric embedding of a tree topology.

    Attributes:
        chip_width_mm / chip_height_mm: die dimensions.
        router_positions: router index -> (x, y) in mm.
        leaf_positions: leaf address -> (x, y) in mm.
        link_lengths: (router, port) -> Manhattan wire length in mm, for
            every *downward* link (to a child router or a leaf).
    """

    chip_width_mm: float
    chip_height_mm: float
    router_positions: dict[int, tuple[float, float]] = field(default_factory=dict)
    leaf_positions: dict[int, tuple[float, float]] = field(default_factory=dict)
    link_lengths: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def chip_area_mm2(self) -> float:
        return self.chip_width_mm * self.chip_height_mm

    def total_link_length_mm(self) -> float:
        """Sum of all (one-way) link lengths — the clock trunk length."""
        return sum(self.link_lengths.values())

    def longest_link_mm(self) -> float:
        return max(self.link_lengths.values())

    def link_length(self, router: int, port: int) -> float:
        key = (router, port)
        if key not in self.link_lengths:
            raise TopologyError(f"no link at router {router} port {port}")
        return self.link_lengths[key]


def _manhattan(a: tuple[float, float], b: tuple[float, float]) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def h_tree_floorplan(topology: TreeTopology, chip_width_mm: float = 10.0,
                     chip_height_mm: float = 10.0) -> Floorplan:
    """H-tree embedding of a *binary* tree.

    Each router sits at the centre of its region; its two children get the
    two halves, split alternately along x and y. Root links on a 10 mm
    square 64-leaf tree come out at 2.5 mm, halving every two levels.
    """
    if topology.arity != 2:
        raise TopologyError("h_tree_floorplan requires a binary tree")
    plan = Floorplan(chip_width_mm=chip_width_mm, chip_height_mm=chip_height_mm)

    def place(router_index: int, cx: float, cy: float, w: float, h: float,
              level: int) -> None:
        plan.router_positions[router_index] = (cx, cy)
        node = topology.router(router_index)
        horizontal = level % 2 == 0  # split along x first, as in Fig. 1
        if horizontal:
            offsets = ((-w / 4.0, 0.0), (w / 4.0, 0.0))
            child_size = (w / 2.0, h)
        else:
            offsets = ((0.0, -h / 4.0), (0.0, h / 4.0))
            child_size = (w, h / 2.0)
        for port_minus_1, child in enumerate(node.children):
            dx, dy = offsets[port_minus_1]
            child_pos = (cx + dx, cy + dy)
            port = port_minus_1 + 1
            plan.link_lengths[(router_index, port)] = _manhattan(
                (cx, cy), child_pos
            )
            if node.children_are_leaves:
                plan.leaf_positions[child] = child_pos
            else:
                place(child, child_pos[0], child_pos[1],
                      child_size[0], child_size[1], level + 1)

    place(0, chip_width_mm / 2.0, chip_height_mm / 2.0,
          chip_width_mm, chip_height_mm, 0)
    return plan


def quad_tree_floorplan(topology: TreeTopology, chip_width_mm: float = 10.0,
                        chip_height_mm: float = 10.0) -> Floorplan:
    """Recursive quadrant embedding of a *quad* tree.

    Children sit at the centres of the four quadrants; Manhattan link
    length is w/4 + h/4 per level, halving each level.
    """
    if topology.arity != 4:
        raise TopologyError("quad_tree_floorplan requires a quad tree")
    plan = Floorplan(chip_width_mm=chip_width_mm, chip_height_mm=chip_height_mm)

    def place(router_index: int, cx: float, cy: float, w: float, h: float) -> None:
        plan.router_positions[router_index] = (cx, cy)
        node = topology.router(router_index)
        offsets = (
            (-w / 4.0, -h / 4.0), (w / 4.0, -h / 4.0),
            (-w / 4.0, h / 4.0), (w / 4.0, h / 4.0),
        )
        for port_minus_1, child in enumerate(node.children):
            dx, dy = offsets[port_minus_1]
            child_pos = (cx + dx, cy + dy)
            port = port_minus_1 + 1
            plan.link_lengths[(router_index, port)] = _manhattan(
                (cx, cy), child_pos
            )
            if node.children_are_leaves:
                plan.leaf_positions[child] = child_pos
            else:
                place(child, child_pos[0], child_pos[1], w / 2.0, h / 2.0)

    place(0, chip_width_mm / 2.0, chip_height_mm / 2.0,
          chip_width_mm, chip_height_mm)
    return plan


def floorplan_for(topology: TreeTopology, chip_width_mm: float = 10.0,
                  chip_height_mm: float = 10.0) -> Floorplan:
    """Dispatch on arity (binary -> H-tree, quad -> quadrants)."""
    if topology.arity == 2:
        return h_tree_floorplan(topology, chip_width_mm, chip_height_mm)
    if topology.arity == 4:
        return quad_tree_floorplan(topology, chip_width_mm, chip_height_mm)
    raise TopologyError(f"no floorplan rule for arity {topology.arity}")


#: Port 0 is the local port on every credit-fabric router; the floorplan
#: stores the endpoint stub wire under that key.
LOCAL_PORT = 0


def grid_fabric_floorplan(cols: int, rows: int,
                          links: Iterable[tuple[int, int, int, int]],
                          chip_width_mm: float = 10.0,
                          chip_height_mm: float = 10.0,
                          wrap_factor: float = FOLDED_WRAP_FACTOR,
                          ) -> Floorplan:
    """Tile a mesh/torus on the die and measure every link.

    Routers sit at tile centres (``pitch = chip / side``); each node's
    endpoint shares its tile, reached through a half-tile local stub.
    Links between grid neighbours get the Manhattan tile pitch; links
    whose endpoints are *not* grid neighbours are wrap links and get
    ``wrap_factor`` pitches in the wrapping dimension (the folded-torus
    routing length — see the module docstring). A 2-wide dimension's
    wrap is a genuine second neighbour link and stays at one pitch.
    """
    if cols < 2 or rows < 2:
        raise TopologyError("grid floorplan needs at least 2x2 tiles")
    pitch_x = chip_width_mm / cols
    pitch_y = chip_height_mm / rows
    plan = Floorplan(chip_width_mm=chip_width_mm,
                     chip_height_mm=chip_height_mm)
    for node in range(cols * rows):
        x, y = node % cols, node // cols
        position = ((x + 0.5) * pitch_x, (y + 0.5) * pitch_y)
        plan.router_positions[node] = position
        plan.leaf_positions[node] = position
        plan.link_lengths[(node, LOCAL_PORT)] = (pitch_x + pitch_y) / 4.0
    for a, a_port, b, _b_port in links:
        ax, ay = a % cols, a // cols
        bx, by = b % cols, b // cols
        dx, dy = abs(ax - bx), abs(ay - by)
        length = 0.0
        length += pitch_x * (dx if dx <= 1 else wrap_factor)
        length += pitch_y * (dy if dy <= 1 else wrap_factor)
        plan.link_lengths[(a, a_port)] = length
    return plan


def ring_fabric_floorplan(nodes: int,
                          links: Iterable[tuple[int, int, int, int]],
                          chip_width_mm: float = 10.0,
                          chip_height_mm: float = 10.0) -> Floorplan:
    """Embed a ring as a loop along the die perimeter.

    Node ``i`` sits at arc position ``i / nodes`` around the rectangle
    boundary (walked from the origin: bottom, right, top, left), so every
    link — the closing link between node ``N-1`` and node 0 included —
    spans ~``perimeter / nodes`` of rectilinear wire. Local stubs are
    half a node pitch.
    """
    if nodes < 2:
        raise TopologyError("ring floorplan needs at least 2 nodes")
    width, height = chip_width_mm, chip_height_mm
    perimeter = 2.0 * (width + height)
    pitch = perimeter / nodes

    def boundary_point(arc: float) -> tuple[float, float]:
        arc %= perimeter
        if arc < width:
            return (arc, 0.0)
        arc -= width
        if arc < height:
            return (width, arc)
        arc -= height
        if arc < width:
            return (width - arc, height)
        return (0.0, height - (arc - width))

    plan = Floorplan(chip_width_mm=width, chip_height_mm=height)
    for node in range(nodes):
        position = boundary_point(node * pitch)
        plan.router_positions[node] = position
        plan.leaf_positions[node] = position
        plan.link_lengths[(node, LOCAL_PORT)] = pitch / 2.0
    for a, a_port, b, _b_port in links:
        plan.link_lengths[(a, a_port)] = _manhattan(
            plan.router_positions[a], plan.router_positions[b]
        )
    return plan
