"""Wormhole tree routers: the paper's 3x3 and 5x5 designs.

A router is assembled from standard pipeline stages plus one
:class:`SwitchCore` that does routing, per-output arbitration and the
crossbar latch:

* 3x3 (binary tree): input stage -> switch -> output stage = 3 half-cycles
  = the paper's 1.5-cycle forward latency, at up to 1.4 GHz;
* 5x5 (quad tree): input -> pre -> switch -> post -> output = 5 half-cycles
  = 2.5 cycles, at up to 1.2 GHz (the extra stages pipeline the wider
  arbitration/crossbar for speed, as the paper's "routers are pipelined for
  optimal speed").

Port 0 is the parent link; ports 1..arity are the children, left to right.
Routing is deterministic up*/down*: if the destination leaf is inside this
router's range, descend through the matching child, else go to the parent.
Up*/down* routing in a tree has an acyclic channel-dependency graph, so
wormhole switching is deadlock-free.

The :class:`SwitchCore` emits the same ``arbitration_grant`` /
``lock_acquire`` / ``lock_release`` events as the credit-fabric routers
(cheap no-ops unobserved), under its own component name
(``<router>.switch``) — consumers like the :mod:`repro.telemetry`
registry and tracer map that back to the router, which keeps the tree
family on the same congestion-attribution path as the credit fabrics.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.clocking.gating import GatedComponentMixin, GatingStats
from repro.errors import ConfigurationError, RoutingError
from repro.fabric.routing import tree_updown_route
from repro.noc.arbiter import Arbiter, RoundRobinArbiter
from repro.noc.flit import Flit
from repro.noc.handshake import HandshakeChannel
from repro.noc.pipeline import PipelineStage
from repro.noc.topology import RouterNode, TreeTopology
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel

#: Factory signature: (output_port, n_inputs) -> Arbiter.
ArbiterFactory = Callable[[int, int], Arbiter]


def round_robin_factory(output_port: int, n_inputs: int) -> Arbiter:
    return RoundRobinArbiter(n_inputs)


class SwitchCore(GatedComponentMixin, ClockedComponent):
    """Routing + arbitration + crossbar latch, one half-cycle.

    Holds one output register ("slot") per output port. At its edge it
    retires accepted slots, routes the flits waiting on its input channels,
    arbitrates per free output among the eligible inputs (wormhole locks
    included) and latches at most one flit per output.
    """

    def __init__(self, kernel: SimKernel, name: str, parity: int,
                 inputs: Sequence[HandshakeChannel],
                 outputs: Sequence[HandshakeChannel],
                 route: Callable[[Flit], int],
                 arbiter_factory: ArbiterFactory = round_robin_factory):
        super().__init__(name, parity)
        if not inputs or not outputs:
            raise ConfigurationError("switch needs inputs and outputs")
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.route = route
        self.slot_flit: list[Flit | None] = [None] * len(self.outputs)
        self.slot_valid = [False] * len(self.outputs)
        self.locks: list[int | None] = [None] * len(self.outputs)
        self.arbiters = [arbiter_factory(o, len(self.inputs))
                         for o in range(len(self.outputs))]
        self._gating = GatingStats()
        self.flits_switched = 0
        self._watch = ([ch.valid_signal for ch in self.inputs]
                       + [ch.accept_signal for ch in self.outputs])
        kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        enabled = False
        # 1. Retire slots the downstream stages accepted half a cycle ago.
        for o, channel in enumerate(self.outputs):
            if self.slot_valid[o] and channel.accepted:
                self.slot_valid[o] = False
                enabled = True
        # 2. Route waiting input flits.
        wants: list[int | None] = [None] * len(self.inputs)
        for i, channel in enumerate(self.inputs):
            if channel.valid:
                wants[i] = self._route_checked(i, channel.data)
        # 3. Per-output arbitration and latch.
        accepted_inputs = [False] * len(self.inputs)
        for o in range(len(self.outputs)):
            if self.slot_valid[o]:
                continue  # output register still occupied
            lock = self.locks[o]
            if lock is not None:
                requests = [wants[i] == o and i == lock
                            for i in range(len(self.inputs))]
            else:
                requests = [wants[i] == o and self.inputs[i].data.is_head
                            for i in range(len(self.inputs))]
            if not any(requests):
                continue
            winner = self.arbiters[o].grant(requests)
            flit = self.inputs[winner].data
            self.slot_flit[o] = flit
            self.slot_valid[o] = True
            accepted_inputs[winner] = True
            self.flits_switched += 1
            enabled = True
            observed = bool(self._kernel._event_subs)
            if observed:
                # Same congestion-diagnosis event the credit fabrics'
                # FabricRouter emits (cheap no-op unobserved).
                self._kernel.emit("arbitration_grant", {
                    "router": self.name, "output": o,
                    "input": winner, "flit": flit,
                })
            if flit.is_tail:
                self.locks[o] = None
                if observed and not flit.is_head:
                    self._kernel.emit("lock_release", {
                        "router": self.name, "output": o,
                        "input": winner, "packet_id": flit.packet_id,
                    })
            elif flit.is_head:
                self.locks[o] = winner
                if observed:
                    self._kernel.emit("lock_acquire", {
                        "router": self.name, "output": o,
                        "input": winner, "packet_id": flit.packet_id,
                    })
        # 4. Drive channel signals.
        for i, channel in enumerate(self.inputs):
            channel.respond(accepted_inputs[i], tick)
        for o, channel in enumerate(self.outputs):
            channel.drive(self.slot_flit[o] if self.slot_valid[o] else None,
                          tick)
        self.gating.record(enabled)
        if not enabled:
            # No retire and no latch: every driven value just repeated the
            # committed one, and nothing can change until an input offers
            # a flit or a downstream stage acknowledges a slot.
            self.sleep_until(*self._watch)

    def _route_checked(self, input_port: int, flit: Flit) -> int:
        output = self.route(flit)
        if not 0 <= output < len(self.outputs):
            raise RoutingError(f"{self.name}: bad route {output} for {flit}")
        if output == input_port:
            raise RoutingError(
                f"{self.name}: U-turn on port {output} for {flit}"
            )
        return output


class TreeRouter:
    """A k-port tree router assembled from stages around a switch core.

    Exposes, per port, the two external channels:

    * ``in_channels[p]`` — driven by the outside (the router consumes);
    * ``out_channels[p]`` — driven by the router (the outside consumes).

    ``input_parity`` is the clock polarity of the input (and output)
    register stages; the switch runs on the opposite edge. ``extra_stages``
    inserts pass-through stages around the switch: 0 gives the 3-half-cycle
    3x3 router, 1 gives the 5-half-cycle 5x5 router.
    """

    def __init__(self, kernel: SimKernel, name: str, node: RouterNode,
                 topology: TreeTopology, input_parity: int,
                 arbiter_factory: ArbiterFactory = round_robin_factory,
                 extra_stages: int | None = None,
                 in_channel_overrides: dict[int, HandshakeChannel] | None = None,
                 out_channel_overrides: dict[int, HandshakeChannel] | None = None,
                 route: Callable[[Flit], int] | None = None):
        self.name = name
        self.node = node
        self.topology = topology
        self.input_parity = input_parity
        # Routing is a pluggable strategy (repro.fabric.routing); the
        # default is the paper's up*/down* walk of this router's node.
        self._route_fn = route if route is not None else tree_updown_route(
            topology, node, name=name,
        )
        ports = node.ports
        if extra_stages is None:
            extra_stages = 1 if ports >= 5 else 0
        self.extra_stages = extra_stages
        if extra_stages not in (0, 1):
            raise ConfigurationError("extra_stages must be 0 or 1")

        in_overrides = in_channel_overrides or {}
        out_overrides = out_channel_overrides or {}
        self.in_channels = [
            in_overrides.get(p) or HandshakeChannel(kernel, f"{name}.in{p}")
            for p in range(ports)
        ]
        self.out_channels = [
            out_overrides.get(p) or HandshakeChannel(kernel, f"{name}.out{p}")
            for p in range(ports)
        ]

        parity = input_parity
        stage_in = self.in_channels
        self.input_stages: list[PipelineStage] = []
        self.pre_stages: list[PipelineStage] = []
        self.post_stages: list[PipelineStage] = []
        self.output_stages: list[PipelineStage] = []

        mid_in = [HandshakeChannel(kernel, f"{name}.i2s{p}") for p in range(ports)]
        for p in range(ports):
            self.input_stages.append(PipelineStage(
                kernel, f"{name}.instage{p}", parity,
                upstream=stage_in[p], downstream=mid_in[p],
            ))
        switch_in = mid_in
        switch_parity = parity ^ 1
        if extra_stages:
            pre_out = [HandshakeChannel(kernel, f"{name}.p2s{p}")
                       for p in range(ports)]
            for p in range(ports):
                self.pre_stages.append(PipelineStage(
                    kernel, f"{name}.prestage{p}", parity ^ 1,
                    upstream=mid_in[p], downstream=pre_out[p],
                ))
            switch_in = pre_out
            switch_parity = parity

        switch_out = [HandshakeChannel(kernel, f"{name}.s2o{p}")
                      for p in range(ports)]
        self.switch = SwitchCore(
            kernel, f"{name}.switch", switch_parity,
            inputs=switch_in, outputs=switch_out,
            route=self._route, arbiter_factory=arbiter_factory,
        )

        out_in = switch_out
        if extra_stages:
            post_out = [HandshakeChannel(kernel, f"{name}.s2p{p}")
                        for p in range(ports)]
            for p in range(ports):
                self.post_stages.append(PipelineStage(
                    kernel, f"{name}.poststage{p}", switch_parity ^ 1,
                    upstream=switch_out[p], downstream=post_out[p],
                ))
            out_in = post_out

        for p in range(ports):
            self.output_stages.append(PipelineStage(
                kernel, f"{name}.outstage{p}", input_parity,
                upstream=out_in[p], downstream=self.out_channels[p],
            ))

    @property
    def ports(self) -> int:
        return self.node.ports

    @property
    def forward_latency_ticks(self) -> int:
        """Half-cycles from input channel to output channel: 3 or 5."""
        return 3 + 2 * self.extra_stages

    def _route(self, flit: Flit) -> int:
        return self._route_fn(flit)

    def all_stages(self) -> list[PipelineStage]:
        return (self.input_stages + self.pre_stages + self.post_stages
                + self.output_stages)

    def gating_stats(self) -> GatingStats:
        """Aggregate gating over every register bank in the router."""
        total = GatingStats()
        for stage in self.all_stages():
            total.merge(stage.gating)
        total.merge(self.switch.gating)
        return total
