"""The 2-phase valid/accept handshake channel (paper Section 5).

A channel bundles three wires between a producer and a consumer clocked at
opposite edges:

* ``data`` + ``valid`` travel downstream (producer -> consumer),
* ``accept`` travels upstream (consumer -> producer).

Level-sensitive semantics, with the clock edge as trigger event: the
producer holds ``data``/``valid`` stable until it observes ``accept``; the
consumer asserts ``accept`` for exactly the half-period following an edge at
which it latched the data. Because the two ends use alternating edges, the
producer can "send the data, and receive acknowledgment from the next
stage, within the same clock cycle" — full-speed streaming without stall
buffers or double-rate clocks.
"""

from __future__ import annotations

from repro.noc.flit import Flit
from repro.sim.kernel import SimKernel
from repro.sim.signal import Signal


class HandshakeChannel:
    """One unidirectional flit channel with valid/accept flow control."""

    def __init__(self, kernel: SimKernel, name: str):
        self.name = name
        self._valid = kernel.signal(f"{name}.valid", initial=False)
        self._data = kernel.signal(f"{name}.data", initial=None)
        self._accept = kernel.signal(f"{name}.accept", initial=False)

    # -- watchable wires (for the idle-component contract) ---------------

    @property
    def valid_signal(self) -> Signal:
        """The valid wire — watch to wake when the producer offers data."""
        return self._valid

    @property
    def accept_signal(self) -> Signal:
        """The accept wire — watch to wake when the consumer acknowledges."""
        return self._accept

    @property
    def data_signal(self) -> Signal:
        """The data wires — observe for payload-level probes (monitors,
        VCD traces); components watch valid/accept instead."""
        return self._data

    # -- producer side --------------------------------------------------

    def drive(self, flit: Flit | None, tick: int | None = None) -> None:
        """Present a flit (or nothing) for the consumer's next edge."""
        self._valid.set(flit is not None, tick)
        self._data.set(flit, tick)

    def force_drive(self, flit: Flit | None) -> None:
        """Override the pending drive, bypassing multi-driver detection
        (fault injection only)."""
        self._valid.force(flit is not None)
        self._data.force(flit)

    @property
    def accepted(self) -> bool:
        """Did the consumer latch our flit at its last edge?"""
        return bool(self._accept.value)

    # -- consumer side --------------------------------------------------

    @property
    def valid(self) -> bool:
        return bool(self._valid.value)

    @property
    def data(self) -> Flit | None:
        return self._data.value

    def respond(self, accept: bool, tick: int | None = None) -> None:
        """Assert/deassert accept for the producer's next edge."""
        self._accept.set(accept, tick)

    def __repr__(self) -> str:
        return (f"HandshakeChannel({self.name!r}, valid={self.valid}, "
                f"accept={self.accepted})")
