"""Packets and their (de)serialisation into flits."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolError
from repro.noc.flit import Flit, FlitKind

_packet_ids = itertools.count()


def next_packet_id() -> int:
    """A process-wide unique packet id (deterministic sequence)."""
    return next(_packet_ids)


@dataclass
class Packet:
    """A message between two network ports.

    Attributes:
        src: source leaf address.
        dest: destination leaf address.
        payload: the 32-bit words carried (one flit per word; empty payload
            makes a single header-only flit).
        packet_id: unique id, auto-assigned when omitted.
        inject_tick / eject_tick: filled in by the network for statistics.
    """

    src: int
    dest: int
    payload: list[int] = field(default_factory=list)
    packet_id: int = field(default_factory=next_packet_id)
    inject_tick: int | None = None
    eject_tick: int | None = None

    def __post_init__(self) -> None:
        if self.src < 0 or self.dest < 0:
            raise ConfigurationError("packet addresses must be >= 0")
        for word in self.payload:
            if not 0 <= word < 2 ** 32:
                raise ConfigurationError("payload words must fit in 32 bits")

    @property
    def flit_count(self) -> int:
        return max(1, len(self.payload))

    def to_flits(self) -> list[Flit]:
        """Serialise into head/body/tail flits (or one SINGLE flit)."""
        words = self.payload if self.payload else [0]
        if len(words) == 1:
            return [Flit(kind=FlitKind.SINGLE, src=self.src, dest=self.dest,
                         packet_id=self.packet_id, seq=0, payload=words[0])]
        flits = []
        last = len(words) - 1
        for seq, word in enumerate(words):
            if seq == 0:
                kind = FlitKind.HEAD
            elif seq == last:
                kind = FlitKind.TAIL
            else:
                kind = FlitKind.BODY
            flits.append(Flit(kind=kind, src=self.src, dest=self.dest,
                              packet_id=self.packet_id, seq=seq, payload=word))
        return flits

    @staticmethod
    def from_flits(flits: list[Flit]) -> "Packet":
        """Reassemble a packet, validating protocol invariants.

        Raises :class:`ProtocolError` on missing/duplicated/reordered flits
        or mixed packets — the checks the property tests lean on.
        """
        if not flits:
            raise ProtocolError("cannot reassemble an empty flit list")
        head = flits[0]
        if not head.is_head:
            raise ProtocolError(f"first flit is not a head: {head}")
        if not flits[-1].is_tail:
            raise ProtocolError(f"last flit is not a tail: {flits[-1]}")
        for i, flit in enumerate(flits):
            if flit.packet_id != head.packet_id:
                raise ProtocolError(
                    f"mixed packets: {flit.packet_id} vs {head.packet_id}"
                )
            if flit.seq != i:
                raise ProtocolError(
                    f"flit out of order: expected seq {i}, got {flit.seq}"
                )
            if 0 < i < len(flits) - 1 and flit.kind != FlitKind.BODY:
                raise ProtocolError(f"unexpected {flit.kind} mid-packet")
        return Packet(
            src=head.src,
            dest=head.dest,
            payload=[flit.payload for flit in flits],
            packet_id=head.packet_id,
        )

    @property
    def latency_ticks(self) -> int:
        """Inject-to-eject latency in half-cycles (after delivery)."""
        if self.inject_tick is None or self.eject_tick is None:
            raise ConfigurationError("packet has not completed transit")
        return self.eject_tick - self.inject_tick

    @property
    def latency_cycles(self) -> float:
        return self.latency_ticks / 2.0
