"""Run-time protocol verification: monitors and watchdogs.

These components observe a simulation without influencing it:

* :class:`ProtocolMonitor` checks the 2-phase handshake invariants on one
  channel — data stability until accept, no accept without valid, no
  payload changes mid-transfer. A violation raises
  :class:`~repro.errors.ProtocolError` at the offending tick, which makes
  protocol bugs fail loudly in tests instead of corrupting statistics.
* :class:`DeadlockWatchdog` fires if a network stops making progress while
  packets are still outstanding (wormhole deadlock, lost accept, ...).

Both are event-driven (:mod:`repro.sim.observe`), so an instrumented run
keeps the kernel's activity-driven fast path:

* the monitor is a dirty-signal probe on the channel's three wires. The
  invariants depend on at most one tick of history, so a check at every
  change tick plus one *settle* check on the following tick reaches the
  same verdicts, at the same ticks, as the old every-tick poll — between
  changes the channel state is a fixed point.
* the watchdog schedules a timeout via :meth:`SimKernel.call_at` and is
  *kicked* by progress (delivery events; injections only when they end
  an idle period) instead of polling a progress counter every tick; the
  timeout fires at the exact same tick in both kernel modes, even
  across fast-forwarded windows.

``attach_monitors`` instruments every channel of a built network;
``attach_watchdog`` wires the watchdog to the network's ``"packet"`` and
``"inject"`` kernel events.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ProtocolError, SimulationError
from repro.noc.handshake import HandshakeChannel
from repro.sim.kernel import SimKernel
from repro.sim.observe import Probe


class ProtocolMonitor(Probe):
    """Invariant checker for one handshake channel.

    Checks, at every tick where a channel wire changed (and once more on
    the following tick, when the new state has settled):

    1. ``accept`` is only asserted while ``valid`` is (or was, at the
       consumer's sampling edge) asserted;
    2. while ``valid`` is high and no accept has arrived, the data must
       stay identical (the producer must hold until acknowledged);
    3. ``valid`` never carries ``None`` data.
    """

    def __init__(self, kernel: SimKernel, channel: HandshakeChannel):
        super().__init__(kernel)
        self.channel = channel
        self.violations: list[str] = []
        self._prev_valid = channel.valid
        self._prev_data = channel.data
        self._prev_accept = channel.accepted
        self.accept_bursts = 0  # rising edges of accept (>= 1 per transfer
        # burst; back-to-back streaming holds accept high, so this counts
        # bursts, not individual flits — stages count flits exactly)
        self._checked_tick = kernel.tick - 1
        self.observe(channel.valid_signal, channel.data_signal,
                     channel.accept_signal)
        # First check at the end of the construction tick, mirroring the
        # old per-tick poll's first sample (catches bad initial state).
        kernel.call_at(kernel.tick, self._settle)

    def _fail(self, tick: int, message: str) -> None:
        detail = f"[tick {tick}] {self.channel.name}: {message}"
        self.violations.append(detail)
        raise ProtocolError(detail)

    def flush(self, tick: int) -> None:
        self._check(tick)
        # The invariants read one tick of history: a state that is legal
        # together with the pre-change state may be illegal against
        # itself (e.g. accept still high one tick after valid dropped).
        # One settled re-check per change reaches the fixed point.
        self.kernel.call_at(tick + 1, self._settle)

    def _settle(self, tick: int) -> None:
        if tick > self._checked_tick:
            self._check(tick)

    def _check(self, tick: int) -> None:
        self._checked_tick = tick
        valid = self.channel.valid
        data = self.channel.data
        accept = self.channel.accepted
        if valid and data is None:
            self._fail(tick, "valid asserted with no data")
        if accept and not (valid or self._prev_valid):
            self._fail(tick, "accept asserted without valid")
        if accept and not self._prev_accept:
            self.accept_bursts += 1
        held = (self._prev_valid and valid
                and not accept and not self._prev_accept)
        if held and data != self._prev_data:
            self._fail(tick, f"data changed before accept: "
                             f"{self._prev_data} -> {data}")
        self._prev_valid = valid
        self._prev_data = data
        self._prev_accept = accept


class DeadlockWatchdog:
    """Detects stalled networks.

    Progress is defined by a caller-supplied counter (delivered flits by
    default); if it fails to advance for ``patience_ticks`` while the
    ``pending`` predicate is true, :class:`SimulationError` is raised.

    The watchdog arms one :meth:`SimKernel.call_at` timeout at
    ``last activity + patience`` instead of polling every tick. Activity
    is reported via :meth:`kick`; at an expiry the progress counter and
    the pending predicate are re-checked as a safety net, so un-kicked
    progress postpones the verdict rather than firing it. An expiry with
    nothing pending goes *dormant* — no timer survives, so a drained
    network stays fully quiescent — and the next kick re-arms; callers
    whose ``pending`` can rise again must therefore kick at that point
    (``attach_watchdog`` kicks on the injection that ends an idle
    period, which is the only way its pending predicate rises).
    """

    def __init__(self, kernel: SimKernel,
                 progress: Callable[[], int],
                 pending: Callable[[], bool],
                 patience_ticks: int = 10_000,
                 snapshot: Callable[[], str] | None = None):
        if patience_ticks < 1:
            raise SimulationError("patience must be >= 1 tick")
        self._kernel = kernel
        self._progress = progress
        self._pending = pending
        self._snapshot = snapshot
        self.patience_ticks = patience_ticks
        self._last_value = progress()
        self._last_change_tick = kernel.tick
        self.fired = False
        self._armed = False
        self._arm(self._last_change_tick + patience_ticks)

    def _arm(self, deadline: int) -> None:
        self._armed = True
        self._kernel.call_at(deadline, self._expire)

    def kick(self, tick: int | None = None) -> None:
        """Record activity now (or at ``tick``): restarts the patience
        window. A live expiry re-arms itself to the postponed deadline;
        a dormant watchdog re-arms here."""
        self._last_value = self._progress()
        self._last_change_tick = (self._kernel.tick if tick is None
                                  else tick)
        if not self._armed:
            self._arm(self._last_change_tick + self.patience_ticks)

    def _expire(self, tick: int) -> None:
        deadline = self._last_change_tick + self.patience_ticks
        if deadline > tick:
            self._arm(deadline)  # kicked since armed: not due yet
            return
        value = self._progress()
        if value != self._last_value:
            # Progress the caller never kicked for; count it from now.
            self._last_value = value
            self._last_change_tick = tick
            self._arm(tick + self.patience_ticks)
            return
        if not self._pending():
            # Nothing outstanding: an idle network is not deadlocked.
            # Go dormant — no live timer, so the network can fast-forward
            # freely — until the next kick re-arms (for attach_watchdog,
            # the injection that ends the idle period).
            self._last_change_tick = tick
            self._armed = False
            return
        self.fired = True
        message = (f"no progress for {self.patience_ticks} ticks with "
                   f"traffic pending (tick {tick})")
        if self._snapshot is not None:
            # Dump who is blocked on whom at the moment progress stopped
            # — the deadlock cycle is usually readable straight off it.
            message = f"{message}\n{self._snapshot()}"
        raise SimulationError(message)


def attach_monitors(network) -> list[ProtocolMonitor]:
    """Instrument every router port channel of an ICNoCNetwork.

    Returns the monitors; any protocol violation during a subsequent run
    raises immediately.
    """
    monitors = []
    for router in network.routers:
        for channel in router.in_channels + router.out_channels:
            monitors.append(ProtocolMonitor(network.kernel, channel))
    return monitors


def attach_watchdog(network, patience_ticks: int = 10_000) -> DeadlockWatchdog:
    """Add a deadlock watchdog keyed on delivered-vs-injected packets.

    Delivery (``"packet"``) events kick the watchdog — deliveries are
    what "progress" means here, so the timeout counts from the exact
    delivery ticks the old per-tick poll saw, without waking the kernel
    every tick. An injection kicks only when it ends an idle period
    (nothing was outstanding before it): that starts the patience window
    — and re-arms a dormant watchdog — without letting a steady stream
    of injections into a deadlocked network postpone the verdict.

    A firing watchdog appends a congestion snapshot
    (:func:`repro.telemetry.attribution.congestion_snapshot`) to its
    error: the top blocked routers with their held wormhole/VC locks
    and exhausted credits."""
    from repro.telemetry.attribution import congestion_snapshot
    watchdog = DeadlockWatchdog(
        network.kernel,
        progress=lambda: network.stats.packets_delivered,
        pending=lambda: (network.stats.packets_delivered
                         < network.stats.packets_injected),
        patience_ticks=patience_ticks,
        snapshot=lambda: congestion_snapshot(network),
    )

    def on_packet(tick: int, data: Any) -> None:
        watchdog.kick(tick)

    def on_inject(tick: int, data: Any) -> None:
        stats = network.stats
        # The "inject" event fires after packets_injected was bumped, so
        # equality-minus-one means the network was idle until this packet.
        if stats.packets_delivered >= stats.packets_injected - 1:
            watchdog.kick(tick)

    network.kernel.subscribe("packet", on_packet)
    network.kernel.subscribe("inject", on_inject)
    return watchdog
