"""Run-time protocol verification: monitors and watchdogs.

These components observe a simulation without influencing it:

* :class:`ProtocolMonitor` checks the 2-phase handshake invariants on one
  channel every tick — data stability until accept, no accept without
  valid, no payload changes mid-transfer. A violation raises
  :class:`~repro.errors.ProtocolError` at the offending tick, which makes
  protocol bugs fail loudly in tests instead of corrupting statistics.
* :class:`DeadlockWatchdog` fires if a network stops making progress while
  packets are still outstanding (wormhole deadlock, lost accept, ...).

``attach_monitors`` instruments every channel of a built network.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ProtocolError, SimulationError
from repro.noc.handshake import HandshakeChannel
from repro.sim.kernel import SimKernel


class ProtocolMonitor:
    """Invariant checker for one handshake channel.

    Checks, per committed tick:

    1. ``accept`` is only asserted while ``valid`` is (or was, at the
       consumer's sampling edge) asserted;
    2. while ``valid`` is high and no accept has arrived, the data must
       stay identical (the producer must hold until acknowledged);
    3. ``valid`` never carries ``None`` data.
    """

    def __init__(self, kernel: SimKernel, channel: HandshakeChannel):
        self.channel = channel
        self.violations: list[str] = []
        self._prev_valid = False
        self._prev_data = None
        self._prev_accept = False
        self.accept_bursts = 0  # rising edges of accept (>= 1 per transfer
        # burst; back-to-back streaming holds accept high, so this counts
        # bursts, not individual flits — stages count flits exactly)
        kernel.on_tick(self._check)

    def _fail(self, tick: int, message: str) -> None:
        detail = f"[tick {tick}] {self.channel.name}: {message}"
        self.violations.append(detail)
        raise ProtocolError(detail)

    def _check(self, tick: int) -> None:
        valid = self.channel.valid
        data = self.channel.data
        accept = self.channel.accepted
        if valid and data is None:
            self._fail(tick, "valid asserted with no data")
        if accept and not (valid or self._prev_valid):
            self._fail(tick, "accept asserted without valid")
        if accept and not self._prev_accept:
            self.accept_bursts += 1
        held = (self._prev_valid and valid
                and not accept and not self._prev_accept)
        if held and data != self._prev_data:
            self._fail(tick, f"data changed before accept: "
                             f"{self._prev_data} -> {data}")
        self._prev_valid = valid
        self._prev_data = data
        self._prev_accept = accept


class DeadlockWatchdog:
    """Detects stalled networks.

    Progress is defined by a caller-supplied counter (delivered flits by
    default); if it fails to advance for ``patience_ticks`` while the
    ``pending`` predicate is true, :class:`SimulationError` is raised.
    """

    def __init__(self, kernel: SimKernel,
                 progress: Callable[[], int],
                 pending: Callable[[], bool],
                 patience_ticks: int = 10_000):
        if patience_ticks < 1:
            raise SimulationError("patience must be >= 1 tick")
        self._progress = progress
        self._pending = pending
        self.patience_ticks = patience_ticks
        self._last_value = progress()
        self._last_change_tick = 0
        self.fired = False
        kernel.on_tick(self._check)

    def _check(self, tick: int) -> None:
        value = self._progress()
        if value != self._last_value:
            self._last_value = value
            self._last_change_tick = tick
            return
        if not self._pending():
            self._last_change_tick = tick
            return
        if tick - self._last_change_tick >= self.patience_ticks:
            self.fired = True
            raise SimulationError(
                f"no progress for {self.patience_ticks} ticks with "
                f"traffic pending (tick {tick})"
            )


def attach_monitors(network) -> list[ProtocolMonitor]:
    """Instrument every router port channel of an ICNoCNetwork.

    Returns the monitors; any protocol violation during a subsequent run
    raises immediately.
    """
    monitors = []
    for router in network.routers:
        for channel in router.in_channels + router.out_channels:
            monitors.append(ProtocolMonitor(network.kernel, channel))
    return monitors


def attach_watchdog(network, patience_ticks: int = 10_000) -> DeadlockWatchdog:
    """Add a deadlock watchdog keyed on delivered-vs-injected packets."""
    return DeadlockWatchdog(
        network.kernel,
        progress=lambda: network.stats.packets_delivered,
        pending=lambda: (network.stats.packets_delivered
                         < network.stats.packets_injected),
        patience_ticks=patience_ticks,
    )
