"""Network interfaces: packetisation at the leaves.

Each network port (leaf) has an NI with an egress half (packets -> flits,
injected through the standard handshake) and an ingress half (flits ->
reassembled packets, delivered to a callback). The NI registers are the
"pipeline stage per port" counted in the area model.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import ProtocolError
from repro.noc.flit import Flit
from repro.noc.handshake import HandshakeChannel
from repro.noc.packet import Packet
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel


class NISource(ClockedComponent):
    """Egress: serialises queued packets into the injection channel."""

    def __init__(self, kernel: SimKernel, name: str, parity: int,
                 downstream: HandshakeChannel):
        super().__init__(name, parity)
        self.downstream = downstream
        self._packets: deque[Packet] = deque()
        self._flits: deque[Flit] = deque()
        self._current: Packet | None = None
        self.driving: Flit | None = None
        self.flits_sent = 0
        self.packets_submitted = 0
        kernel.add_component(self)

    def submit(self, packet: Packet) -> None:
        self._packets.append(packet)
        self.packets_submitted += 1
        self.wake()

    @property
    def idle(self) -> bool:
        return (self.driving is None and not self._flits
                and not self._packets)

    @property
    def queue_depth(self) -> int:
        return len(self._packets)

    def on_edge(self, tick: int) -> None:
        if self.driving is not None and self.downstream.accepted:
            self.flits_sent += 1
            self.driving = None
        if self.driving is None:
            if not self._flits and self._packets:
                self._current = self._packets.popleft()
                self._current.inject_tick = tick
                self._flits.extend(self._current.to_flits())
            if self._flits:
                self.driving = self._flits.popleft()
        self.downstream.drive(self.driving, tick)
        if self.driving is None and not self._flits and not self._packets:
            # Empty egress: nothing happens until the next submit().
            self.sleep_until()


class NISink(ClockedComponent):
    """Ingress: reassembles arriving flits into packets.

    Always ready (the paper's demonstrator drains ejected traffic into
    local memories); an optional ``on_packet`` callback lets system models
    react, e.g. a memory turning a request into a response.
    """

    def __init__(self, kernel: SimKernel, name: str, parity: int,
                 upstream: HandshakeChannel,
                 on_packet: Callable[[Packet, int], None] | None = None):
        super().__init__(name, parity)
        self.upstream = upstream
        self.on_packet = on_packet
        self._assembly: dict[int, list[Flit]] = {}
        self.delivered: list[Packet] = []
        self.flits_received = 0
        kernel.add_component(self)

    def on_edge(self, tick: int) -> None:
        if not self.upstream.valid:
            self.upstream.respond(False, tick)
            self.sleep_until(self.upstream.valid_signal)
            return
        flit = self.upstream.data
        self.upstream.respond(True, tick)
        self.flits_received += 1
        self._kernel.emit("flit", flit)
        buffer = self._assembly.setdefault(flit.packet_id, [])
        buffer.append(flit)
        if flit.is_tail:
            del self._assembly[flit.packet_id]
            packet = Packet.from_flits(buffer)
            packet.eject_tick = tick
            self.delivered.append(packet)
            if self.on_packet is not None:
                self.on_packet(packet, tick)
            self._kernel.emit("packet", packet)

    @property
    def incomplete(self) -> int:
        """Packets currently mid-reassembly."""
        return len(self._assembly)


class NetworkInterface:
    """One leaf port: an egress source plus an ingress sink."""

    def __init__(self, kernel: SimKernel, leaf: int,
                 to_network: HandshakeChannel,
                 from_network: HandshakeChannel,
                 source_parity: int, sink_parity: int,
                 on_packet: Callable[[Packet, int], None] | None = None):
        self.leaf = leaf
        self.source = NISource(kernel, f"ni{leaf}.src", source_parity,
                               to_network)
        self.sink = NISink(kernel, f"ni{leaf}.sink", sink_parity,
                           from_network, on_packet=on_packet)

    def submit(self, packet: Packet) -> None:
        if packet.src != self.leaf:
            raise ProtocolError(
                f"packet src {packet.src} submitted at leaf {self.leaf}"
            )
        self.source.submit(packet)

    @property
    def delivered(self) -> list[Packet]:
        return self.sink.delivered
