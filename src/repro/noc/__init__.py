"""The IC-NoC itself: flits, handshake links, tree routers, networks.

This package implements the packet-routing network of the paper's
Sections 3, 5 and 6 on top of the half-cycle kernel: capacity-1 pipeline
stages with valid/accept 2-phase flow control clocked at alternating edges,
wormhole 3x3/5x5 tree routers, H-tree floorplanning, and the assembled
network with its network interfaces and statistics.
"""

from repro.noc.flit import Flit, FlitKind
from repro.noc.packet import Packet
from repro.noc.handshake import HandshakeChannel
from repro.noc.pipeline import PipelineStage, SourceStage, SinkStage, build_pipeline
from repro.noc.arbiter import RoundRobinArbiter, FixedPriorityArbiter
from repro.noc.topology import TreeTopology
from repro.noc.floorplan import Floorplan, h_tree_floorplan, quad_tree_floorplan
from repro.noc.router import TreeRouter
from repro.noc.network import ICNoCNetwork, NetworkConfig
from repro.noc.stats import NetworkStats
from repro.noc.debug import ProtocolMonitor, DeadlockWatchdog, attach_monitors
from repro.noc.faults import FaultInjector, FaultKind, inject_link_fault
from repro.noc.latency_model import (
    zero_load_latency_cycles,
    zero_load_latency_ticks,
)

__all__ = [
    "Flit",
    "FlitKind",
    "Packet",
    "HandshakeChannel",
    "PipelineStage",
    "SourceStage",
    "SinkStage",
    "build_pipeline",
    "RoundRobinArbiter",
    "FixedPriorityArbiter",
    "TreeTopology",
    "Floorplan",
    "h_tree_floorplan",
    "quad_tree_floorplan",
    "TreeRouter",
    "ICNoCNetwork",
    "NetworkConfig",
    "NetworkStats",
    "ProtocolMonitor",
    "DeadlockWatchdog",
    "attach_monitors",
    "FaultInjector",
    "FaultKind",
    "inject_link_fault",
    "zero_load_latency_cycles",
    "zero_load_latency_ticks",
]
