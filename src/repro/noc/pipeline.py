"""Pipeline stages: capacity-1 registers with integrated flow control.

This is the paper's Fig. 4 in executable form. Each stage is one register
bank clocked on one edge; adjacent stages use opposite edges. At its edge a
stage:

1. retires its held flit if the downstream stage accepted it (the accept
   was asserted at downstream's edge, half a period ago);
2. if (now) empty and the upstream channel shows a valid flit, latches it
   and asserts accept upstream for one half-period;
3. keeps driving its (possibly empty) contents downstream.

The register enable fires only in steps 1-2; otherwise the stage's clock is
gated — counted in :class:`repro.clocking.gating.GatingStats`. Data can move
at full clock speed (one flit per cycle per stage), the pipeline freezes
within a cycle under congestion, resumes within a cycle after it clears,
and no stage ever needs more than its single register — the "no stall
buffers" property.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.clocking.gating import GatedComponentMixin, GatingStats
from repro.errors import ConfigurationError
from repro.noc.flit import Flit
from repro.noc.handshake import HandshakeChannel
from repro.sim.component import ClockedComponent
from repro.sim.kernel import SimKernel


class PipelineStage(GatedComponentMixin, ClockedComponent):
    """One alternating-edge pipeline register with valid/accept control."""

    def __init__(self, kernel: SimKernel, name: str, parity: int,
                 upstream: HandshakeChannel, downstream: HandshakeChannel):
        super().__init__(name, parity)
        self.upstream = upstream
        self.downstream = downstream
        self.reg_flit: Flit | None = None
        self.reg_valid = False
        self._gating = GatingStats()
        self.flits_passed = 0
        kernel.add_component(self)

    @property
    def occupied(self) -> bool:
        return self.reg_valid

    def on_edge(self, tick: int) -> None:
        enabled = False
        # 1. Retire on downstream accept (asserted at its edge, last tick).
        if self.reg_valid and self.downstream.accepted:
            self.reg_valid = False
            enabled = True
        # 2. Latch from upstream if empty.
        if not self.reg_valid and self.upstream.valid:
            self.reg_flit = self.upstream.data
            self.reg_valid = True
            self.flits_passed += 1
            self.upstream.respond(True, tick)
            enabled = True
        else:
            self.upstream.respond(False, tick)
        # 3. Drive downstream.
        self.downstream.drive(self.reg_flit if self.reg_valid else None, tick)
        self.gating.record(enabled)
        if not enabled:
            # A disabled edge is a fixed point: with the inputs unchanged,
            # every following edge repeats it exactly.
            self.sleep_until(self.upstream.valid_signal,
                             self.downstream.accept_signal)


class SourceStage(ClockedComponent):
    """Injects flits into a channel, holding each until accepted.

    Flits come either from an internal queue (:meth:`send`) or from a
    pull callback supplied at construction (returns the next flit or None).
    """

    def __init__(self, kernel: SimKernel, name: str, parity: int,
                 downstream: HandshakeChannel,
                 puller: Callable[[int], Flit | None] | None = None):
        super().__init__(name, parity)
        self.downstream = downstream
        self.queue: deque[Flit] = deque()
        self._puller = puller
        self.driving: Flit | None = None
        self.flits_sent = 0
        self.launch_ticks: dict[tuple[int, int], int] = {}
        kernel.add_component(self)

    def send(self, flits: Iterable[Flit]) -> None:
        self.queue.extend(flits)
        self.wake()

    @property
    def idle(self) -> bool:
        return self.driving is None and not self.queue

    def on_edge(self, tick: int) -> None:
        if self.driving is not None and self.downstream.accepted:
            self.flits_sent += 1
            self.driving = None
        if self.driving is None:
            if self.queue:
                self.driving = self.queue.popleft()
            elif self._puller is not None:
                self.driving = self._puller(tick)
            if self.driving is not None:
                self.launch_ticks[(self.driving.packet_id, self.driving.seq)] = tick
        self.downstream.drive(self.driving, tick)
        if self.driving is None and self._puller is None and not self.queue:
            # Nothing to send and no pull source: wait for send().
            self.sleep_until()


class SinkStage(ClockedComponent):
    """Consumes flits from a channel, with an optional stall schedule.

    ``ready`` is a callback deciding, per edge, whether the sink accepts;
    the default always accepts. Received flits are recorded with their
    arrival tick — the raw material of latency statistics and of the
    no-loss/no-reorder property tests.
    """

    def __init__(self, kernel: SimKernel, name: str, parity: int,
                 upstream: HandshakeChannel,
                 ready: Callable[[int], bool] | None = None):
        super().__init__(name, parity)
        self.upstream = upstream
        self._ready = ready if ready is not None else (lambda tick: True)
        self.received: list[tuple[int, Flit]] = []
        kernel.add_component(self)

    @property
    def flits(self) -> list[Flit]:
        return [flit for _, flit in self.received]

    def on_edge(self, tick: int) -> None:
        if self.upstream.valid and self._ready(tick):
            self.received.append((tick, self.upstream.data))
            self._kernel.emit("flit", self.upstream.data)
            self.upstream.respond(True, tick)
        else:
            self.upstream.respond(False, tick)
            if not self.upstream.valid:
                # The ready schedule only matters while data waits; with
                # no valid flit the edge is a no-op until valid rises.
                self.sleep_until(self.upstream.valid_signal)


def build_pipeline(kernel: SimKernel, name: str, stages: int,
                   source_parity: int = 0,
                   ready: Callable[[int], bool] | None = None,
                   ) -> tuple[SourceStage, list[PipelineStage], SinkStage]:
    """A straight pipeline: source -> N stages -> sink, alternating parity.

    The workhorse of the flow-control experiments and property tests.
    """
    if stages < 0:
        raise ConfigurationError(f"stage count must be >= 0, got {stages}")
    channels = [HandshakeChannel(kernel, f"{name}.ch{i}")
                for i in range(stages + 1)]
    source = SourceStage(kernel, f"{name}.src", source_parity, channels[0])
    stage_list = []
    parity = source_parity
    for i in range(stages):
        parity ^= 1
        stage_list.append(PipelineStage(
            kernel, f"{name}.s{i}", parity, channels[i], channels[i + 1]
        ))
    sink = SinkStage(kernel, f"{name}.sink", parity ^ 1, channels[stages],
                     ready=ready)
    return source, stage_list, sink
