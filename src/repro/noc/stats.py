"""Network statistics: latency, throughput, gating."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.clocking.gating import GatingStats
from repro.noc.packet import Packet


@dataclass
class LatencySummary:
    """Latency distribution in clock cycles."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float
    minimum: float

    @staticmethod
    def from_cycles(latencies: list[float]) -> "LatencySummary":
        if not latencies:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(latencies, dtype=float)
        return LatencySummary(
            count=len(latencies),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            maximum=float(arr.max()),
            minimum=float(arr.min()),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping; round-trips through :meth:`from_dict`."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "LatencySummary":
        return LatencySummary(**data)

    def describe(self) -> str:
        return (f"n={self.count} mean={self.mean:.2f} p50={self.p50:.2f} "
                f"p95={self.p95:.2f} p99={self.p99:.2f} "
                f"max={self.maximum:.2f} cycles")


@dataclass
class NetworkStats:
    """Aggregated results of one simulation run."""

    packets_injected: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    elapsed_ticks: int = 0
    latencies_cycles: list[float] = field(default_factory=list)
    hop_counts: list[int] = field(default_factory=list)
    gating: GatingStats = field(default_factory=GatingStats)

    def record_delivery(self, packet: Packet, hops: int) -> None:
        self.packets_delivered += 1
        self.flits_delivered += packet.flit_count
        self.latencies_cycles.append(packet.latency_cycles)
        self.hop_counts.append(hops)

    @property
    def elapsed_cycles(self) -> float:
        return self.elapsed_ticks / 2.0

    @property
    def latency(self) -> LatencySummary:
        return LatencySummary.from_cycles(self.latencies_cycles)

    @property
    def throughput_flits_per_cycle(self) -> float:
        """Network-wide accepted throughput."""
        if self.elapsed_ticks == 0:
            return 0.0
        return self.flits_delivered / self.elapsed_cycles

    @property
    def mean_hops(self) -> float:
        if not self.hop_counts:
            return 0.0
        return sum(self.hop_counts) / len(self.hop_counts)

    def describe(self) -> str:
        return (
            f"{self.packets_delivered}/{self.packets_injected} packets, "
            f"{self.throughput_flits_per_cycle:.3f} flits/cycle, "
            f"latency {self.latency.describe()}, "
            f"gating {self.gating.gating_ratio:.1%}"
        )
