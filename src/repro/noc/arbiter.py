"""Output-port arbiters for the routers.

Two policies from the paper:

* round-robin — the default fair policy;
* fixed priority — "the prioritization within the routers is balanced such
  that a processor always has priority to accessing its local memory"
  (Section 6): the demonstrator's leaf routers give the processor input
  fixed priority on the local-memory output.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.errors import ConfigurationError


class Arbiter(abc.ABC):
    """Chooses one requester among many, one grant per invocation."""

    def __init__(self, inputs: int):
        if inputs < 1:
            raise ConfigurationError(f"arbiter needs >= 1 input, got {inputs}")
        self.inputs = inputs
        self.grants = 0
        self.grant_counts = [0] * inputs

    @abc.abstractmethod
    def _select(self, requests: Sequence[bool]) -> int | None:
        """Pick the granted input index, or None if no requests."""

    def grant(self, requests: Sequence[bool]) -> int | None:
        if len(requests) != self.inputs:
            raise ConfigurationError(
                f"expected {self.inputs} request lines, got {len(requests)}"
            )
        choice = self._select(requests)
        if choice is not None:
            if not requests[choice]:
                raise ConfigurationError("arbiter granted a non-requester")
            self.grants += 1
            self.grant_counts[choice] += 1
        return choice


class RoundRobinArbiter(Arbiter):
    """Fair rotating-priority arbiter.

    The search starts after the most recently granted input, so under
    continuous contention each requester is served within ``inputs`` grants
    (the fairness bound the tests check).
    """

    def __init__(self, inputs: int):
        super().__init__(inputs)
        self._last = inputs - 1

    def _select(self, requests: Sequence[bool]) -> int | None:
        for offset in range(1, self.inputs + 1):
            candidate = (self._last + offset) % self.inputs
            if requests[candidate]:
                self._last = candidate
                return candidate
        return None


class FixedPriorityArbiter(Arbiter):
    """Grants the first requester in a fixed preference order."""

    def __init__(self, inputs: int, order: Sequence[int] | None = None):
        super().__init__(inputs)
        if order is None:
            order = range(inputs)
        order = list(order)
        if sorted(order) != list(range(inputs)):
            raise ConfigurationError(
                f"priority order must be a permutation of 0..{inputs - 1}"
            )
        self.order = order

    def _select(self, requests: Sequence[bool]) -> int | None:
        for candidate in self.order:
            if requests[candidate]:
                return candidate
        return None
