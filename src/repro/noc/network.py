"""Network assembly: topology + floorplan + routers + links + NIs + clock.

:class:`ICNoCNetwork` builds a complete simulatable IC-NoC from a
:class:`NetworkConfig`:

* routers at the tree nodes, clocked at alternating edges level by level;
* links segmented so no pipeline segment exceeds ``max_segment_mm`` (the
  demonstrator targets 1.25 mm near the root, paper Section 6), with one
  pipeline stage per extra segment per direction;
* a forwarded clock tree whose node polarities match the simulation
  parities by construction;
* per-segment :class:`~repro.timing.validator.ChannelSpec` records for the
  timing validator;
* NIs at the leaves with packet statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.clocking.clock_tree import ClockTree
from repro.clocking.gating import GatingStats
from repro.errors import ConfigurationError, TopologyError
from repro.noc.arbiter import FixedPriorityArbiter, RoundRobinArbiter
from repro.noc.floorplan import Floorplan, floorplan_for, segment_count
from repro.noc.handshake import HandshakeChannel
from repro.noc.ni import NetworkInterface
from repro.noc.packet import Packet
from repro.noc.pipeline import PipelineStage
from repro.noc.router import ArbiterFactory, TreeRouter, round_robin_factory
from repro.noc.stats import NetworkStats
from repro.noc.topology import TreeTopology, PARENT_PORT
from repro.sim.kernel import SimKernel
from repro.tech.technology import Technology, TECH_90NM
from repro.timing.frequency import (
    pipeline_max_frequency,
    router_max_frequency,
)
from repro.timing.validator import ChannelSpec


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of an IC-NoC instance.

    Attributes:
        leaves: number of network ports (a power of ``arity``).
        arity: 2 for binary trees (3x3 routers), 4 for quad (5x5 routers).
        chip_width_mm / chip_height_mm: die size for the floorplan.
        max_segment_mm: longest allowed pipeline segment; links longer than
            this get intermediate pipeline stages.
        tech: technology models.
        arbiter_policy: "round_robin", or "local_priority" for the
            demonstrator's processor-over-network priority at leaf routers
            (binary trees with proc/mem sibling pairs only).
        activity_driven: run the kernel's idle-skipping fast path (the
            default); False forces the naive fire-everything reference
            loop, useful for equivalence checks and benchmarking.
    """

    leaves: int = 64
    arity: int = 2
    chip_width_mm: float = 10.0
    chip_height_mm: float = 10.0
    max_segment_mm: float = 1.25
    tech: Technology = TECH_90NM
    arbiter_policy: str = "round_robin"
    activity_driven: bool = True

    def __post_init__(self) -> None:
        if self.max_segment_mm <= 0.0:
            raise ConfigurationError("max_segment_mm must be positive")
        if self.arbiter_policy not in ("round_robin", "local_priority"):
            raise ConfigurationError(
                f"unknown arbiter policy {self.arbiter_policy!r}"
            )
        if self.arbiter_policy == "local_priority" and self.arity != 2:
            raise ConfigurationError(
                "local_priority assumes proc/mem sibling pairs (arity 2)"
            )


def _local_priority_policy(node, output_port: int, n_inputs: int):
    """Demonstrator arbitration: the processor input (port 1) always beats
    the network (parent, port 0) for access to the local memory (port 2)."""
    if node.children_are_leaves and output_port == 2:
        return FixedPriorityArbiter(n_inputs, order=[1, 0, 2])
    return RoundRobinArbiter(n_inputs)


class ICNoCNetwork:
    """A built, runnable IC-NoC."""

    def __init__(self, config: NetworkConfig, kernel: SimKernel | None = None):
        self.config = config
        self.topology = TreeTopology(config.leaves, config.arity)
        self.floorplan: Floorplan = floorplan_for(
            self.topology, config.chip_width_mm, config.chip_height_mm
        )
        # An external kernel lets system models (the demonstrator's tile
        # drivers) register components *before* the network's, so their
        # submissions reach the NIs the same tick — it must agree with
        # the config on the execution mode.
        if kernel is not None and kernel.activity_driven != config.activity_driven:
            raise ConfigurationError(
                "provided kernel's activity_driven flag contradicts the "
                "network config"
            )
        self.kernel = kernel if kernel is not None \
            else SimKernel(activity_driven=config.activity_driven)
        self.clock_tree = ClockTree(root_name="clkgen")
        self.routers: list[TreeRouter] = []
        self.link_stages: list[PipelineStage] = []
        self.nis: list[NetworkInterface] = []
        self.channel_specs: list[ChannelSpec] = []
        self.stats = NetworkStats()
        self._handlers: dict[int, Callable[[Packet, int], None]] = {}
        self._inflight: dict[int, Packet] = {}
        self._build()

    # -- construction ---------------------------------------------------

    def _arbiter_factory_for(self, node) -> ArbiterFactory:
        if self.config.arbiter_policy == "local_priority":
            return lambda output_port, n_inputs: _local_priority_policy(
                node, output_port, n_inputs
            )
        return round_robin_factory

    def _segments(self, length_mm: float) -> int:
        return segment_count(length_mm, self.config.max_segment_mm)

    def _route_for(self, node):
        """Routing-function hook for subclasses (None = the default
        up*/down* strategy). The concentrated tree overrides this to map
        endpoint addresses onto shared leaves."""
        return None

    def _build(self) -> None:
        topo = self.topology
        self.routers = [None] * topo.router_count  # type: ignore[list-item]
        self.nis = [None] * topo.leaves  # type: ignore[list-item]
        root_node = topo.router(0)
        root = TreeRouter(
            self.kernel, "r0", root_node, topo, input_parity=0,
            arbiter_factory=self._arbiter_factory_for(root_node),
            route=self._route_for(root_node),
        )
        self.routers[0] = root
        self.clock_tree.add("r0", parent="clkgen", segment_delay_ps=0.0,
                            inverts=False)
        self._wire_children(root)

    def _wire_children(self, router: TreeRouter) -> None:
        node = router.node
        for child_slot, child in enumerate(node.children):
            port = child_slot + 1
            length = self.floorplan.link_length(node.index, port)
            n_seg = self._segments(length)
            seg_len = length / n_seg
            seg_delay = self.config.tech.buffered_wire.delay(seg_len)
            link_name = f"l{node.index}.{port}"

            # Downward chain: router output -> stages -> endpoint input.
            down_chs = [router.out_channels[port]]
            parity = router.input_parity ^ 1
            clock_parent = router.name
            for j in range(n_seg - 1):
                ch = HandshakeChannel(self.kernel, f"{link_name}.d{j}")
                stage = PipelineStage(
                    self.kernel, f"{link_name}.dst{j}", parity,
                    upstream=down_chs[-1], downstream=ch,
                )
                self.link_stages.append(stage)
                down_chs.append(ch)
                stage_clock = f"{link_name}.st{j}"
                self.clock_tree.add(stage_clock, parent=clock_parent,
                                    segment_delay_ps=seg_delay)
                clock_parent = stage_clock
                parity ^= 1
            endpoint_parity = parity

            # Upward chain runs through stages at the same positions.
            # Build from the endpoint back toward the router.
            up_endpoint_drives = HandshakeChannel(
                self.kernel, f"{link_name}.u{n_seg - 1}"
            ) if n_seg > 1 else router.in_channels[port]
            up_chs = [up_endpoint_drives]
            up_parity = endpoint_parity ^ 1
            for j in range(n_seg - 2, -1, -1):
                target = (router.in_channels[port] if j == 0 else
                          HandshakeChannel(self.kernel, f"{link_name}.u{j}"))
                stage = PipelineStage(
                    self.kernel, f"{link_name}.ust{j}", up_parity,
                    upstream=up_chs[-1], downstream=target,
                )
                self.link_stages.append(stage)
                up_chs.append(target)
                up_parity ^= 1

            # Per-segment timing specs (both directions share the wires).
            for j in range(n_seg):
                base = f"{link_name}.seg{j}"
                self.channel_specs.append(ChannelSpec(
                    name=f"{base}.down", clock_delay_ps=seg_delay,
                    data_delay_ps=seg_delay, accept_delay_ps=seg_delay,
                    downstream=True,
                ))
                self.channel_specs.append(ChannelSpec(
                    name=f"{base}.up", clock_delay_ps=seg_delay,
                    data_delay_ps=seg_delay, accept_delay_ps=seg_delay,
                    downstream=False,
                ))

            if node.children_are_leaves:
                ni = NetworkInterface(
                    self.kernel, leaf=child,
                    to_network=up_chs[0],
                    from_network=down_chs[-1],
                    source_parity=endpoint_parity,
                    sink_parity=endpoint_parity,
                    on_packet=self._make_delivery_hook(child),
                )
                self.nis[child] = ni
                self.clock_tree.add(f"ni{child}", parent=clock_parent,
                                    segment_delay_ps=seg_delay)
            else:
                child_node = self.topology.router(child)
                child_router = TreeRouter(
                    self.kernel, f"r{child}", child_node, self.topology,
                    input_parity=endpoint_parity,
                    arbiter_factory=self._arbiter_factory_for(child_node),
                    in_channel_overrides={PARENT_PORT: down_chs[-1]},
                    out_channel_overrides={PARENT_PORT: up_chs[0]},
                    route=self._route_for(child_node),
                )
                self.routers[child] = child_router
                self.clock_tree.add(f"r{child}", parent=clock_parent,
                                    segment_delay_ps=seg_delay)
                self._wire_children(child_router)

    def _make_delivery_hook(self, leaf: int) -> Callable[[Packet, int], None]:
        def hook(packet: Packet, tick: int) -> None:
            # Reassembly built a fresh Packet; recover the injection time
            # recorded on the submitted original.
            original = self._inflight.pop(packet.packet_id, None)
            if original is not None:
                packet.inject_tick = original.inject_tick
            hops = self.topology.hop_count(packet.src, packet.dest)
            self.stats.record_delivery(packet, hops)
            handler = self._handlers.get(leaf)
            if handler is not None:
                handler(packet, tick)
        return hook

    # -- run-time API -----------------------------------------------------

    def set_handler(self, leaf: int,
                    handler: Callable[[Packet, int], None]) -> None:
        """Install a delivery callback at a leaf (used by system models)."""
        if not 0 <= leaf < self.config.leaves:
            raise TopologyError(f"unknown leaf {leaf}")
        self._handlers[leaf] = handler

    def send(self, packet: Packet) -> None:
        if not 0 <= packet.dest < self.config.leaves:
            raise TopologyError(f"unknown destination {packet.dest}")
        if packet.src == packet.dest:
            raise TopologyError("src == dest: packets never enter the NoC")
        self._inflight[packet.packet_id] = packet
        self.nis[packet.src].submit(packet)
        self.stats.packets_injected += 1
        self.kernel.emit("inject", packet)

    def run_ticks(self, ticks: int) -> None:
        self.kernel.run_ticks(ticks)
        self.stats.elapsed_ticks = self.kernel.tick

    def run_cycles(self, cycles: float) -> None:
        self.kernel.run_cycles(cycles)
        self.stats.elapsed_ticks = self.kernel.tick

    def drain(self, max_ticks: int = 1_000_000) -> bool:
        """Run until every injected packet is delivered (or give up)."""
        done = self.kernel.run_until(
            lambda: self.stats.packets_delivered >= self.stats.packets_injected,
            max_ticks,
        )
        self.stats.elapsed_ticks = self.kernel.tick
        return done

    @property
    def delivered(self) -> list[Packet]:
        out: list[Packet] = []
        for ni in self.nis:
            out.extend(ni.delivered)
        return out

    # -- analysis hooks -----------------------------------------------------

    @property
    def link_stage_count(self) -> int:
        """Intermediate pipeline stages on links (both directions)."""
        return len(self.link_stages)

    @property
    def pipeline_stage_count(self) -> int:
        """Stages counted by the area model: link stages + one per port."""
        return self.link_stage_count + self.config.leaves

    def longest_segment_mm(self) -> float:
        longest = 0.0
        for node in self.topology.routers:
            for child_slot in range(len(node.children)):
                port = child_slot + 1
                length = self.floorplan.link_length(node.index, port)
                longest = max(longest, length / self._segments(length))
        return longest

    def operating_frequency_ghz(self) -> float:
        """Max clock rate: min of router critical paths and the Fig. 7
        pipeline model evaluated at the longest physical segment."""
        f_router = router_max_frequency(self.topology.router_ports,
                                        self.config.tech)
        f_links = pipeline_max_frequency(self.longest_segment_mm(),
                                         self.config.tech)
        return min(f_router, f_links)

    def gating_stats(self) -> GatingStats:
        total = GatingStats()
        for router in self.routers:
            total.merge(router.gating_stats())
        for stage in self.link_stages:
            total.merge(stage.gating)
        return total

    def describe(self) -> str:
        return (
            f"IC-NoC: {self.config.leaves} ports, arity {self.config.arity}, "
            f"{self.topology.router_count} routers "
            f"({self.topology.router_ports}x{self.topology.router_ports}), "
            f"{self.link_stage_count} link stages, "
            f"f_max {self.operating_frequency_ghz():.3f} GHz"
        )
