"""Analytical zero-load latency model — validated against the simulator.

Under zero load a packet's head flit advances exactly one clocked element
per half-cycle (kernel tick): through every stage of every router on the
path, every intermediate link pipeline stage, and the final NI sink latch.
Body/tail flits stream behind at one flit per cycle. Hence::

    head_ticks  = sum(router forward latencies) + link stages on path + 1
    total_ticks = head_ticks + 2 * (flits - 1)

The model is exact, not approximate: ``tests/noc/test_latency_model.py``
asserts tick-for-tick agreement with the behavioural simulation for every
source/destination pair. This is both a regression net for the simulator
and the fast path for large design-space sweeps (no simulation needed).
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.noc.floorplan import segment_count
from repro.noc.topology import TreeTopology


def path_link_stage_count(network, src: int, dest: int) -> int:
    """Intermediate pipeline stages a flit crosses between two leaves."""
    topo: TreeTopology = network.topology
    if src == dest:
        raise TopologyError("src == dest has no path")
    stages = 0

    def link_stages(router_index: int, port: int) -> int:
        length = network.floorplan.link_length(router_index, port)
        return segment_count(length, network.config.max_segment_mm) - 1

    # Source leaf link (upward).
    src_router = topo.leaf_router(src)
    stages += link_stages(src_router.index,
                          topo.child_port_for_leaf(src_router, src))
    # Inter-router links.
    path = topo.route_path(src, dest)
    for a, b in zip(path, path[1:]):
        upper, lower = (a, b) if topo.router(b).parent == a else (b, a)
        node = topo.router(upper)
        port = node.children.index(lower) + 1
        stages += link_stages(upper, port)
    # Destination leaf link (downward).
    dest_router = topo.leaf_router(dest)
    stages += link_stages(dest_router.index,
                          topo.child_port_for_leaf(dest_router, dest))
    return stages


def zero_load_latency_ticks(network, src: int, dest: int,
                            flits: int = 1) -> int:
    """Exact inject-to-eject latency in half-cycles, empty network."""
    if flits < 1:
        raise TopologyError("packets have at least one flit")
    path = network.topology.route_path(src, dest)
    router_ticks = sum(network.routers[r].forward_latency_ticks
                       for r in path)
    head = router_ticks + path_link_stage_count(network, src, dest) + 1
    return head + 2 * (flits - 1)


def zero_load_latency_cycles(network, src: int, dest: int,
                             flits: int = 1) -> float:
    return zero_load_latency_ticks(network, src, dest, flits) / 2.0


def worst_case_latency_cycles(network, flits: int = 1) -> float:
    """Max zero-load latency over all leaf pairs (closed form per pair)."""
    worst = 0.0
    leaves = network.config.leaves
    for src in range(leaves):
        for dest in range(leaves):
            if src != dest:
                worst = max(worst, zero_load_latency_cycles(
                    network, src, dest, flits
                ))
    return worst


def mean_latency_cycles_uniform(network, flits: int = 1) -> float:
    """Mean zero-load latency under uniform traffic (all ordered pairs)."""
    total = 0.0
    pairs = 0
    leaves = network.config.leaves
    for src in range(leaves):
        for dest in range(leaves):
            if src != dest:
                total += zero_load_latency_cycles(network, src, dest, flits)
                pairs += 1
    return total / pairs
