"""Fault injection: break a pipeline stage and watch the safety nets fire.

Timing-safe does not mean fault-free; this module exists to exercise the
detection machinery (protocol monitors, deadlock watchdog, delivery
accounting) against concrete failure modes:

* ``STUCK_STALL``  — the stage's control outputs die (valid and accept
  stuck low): upstream backpressure freezes the path and downstream
  starves; the deadlock watchdog fires. The flit held in the dead
  register is stuck in place, but nothing is duplicated or reordered.
* ``DROP_FLITS``   — the stage acknowledges and discards (a clock-domain
  upset eating data): delivered < injected shows up in the stats and the
  watchdog fires on the missing tail.
* ``CORRUPT_DEST`` — the stage rewrites head-flit destinations (an upset
  in the routing field): packets arrive at the wrong NI, caught by
  delivery accounting.

Faults are injected by wrapping a live stage's ``on_edge``; the original
behaviour is restored by :meth:`FaultInjector.heal`.
"""

from __future__ import annotations

import enum
from dataclasses import replace

from repro.errors import ConfigurationError
from repro.noc.pipeline import PipelineStage


class FaultKind(enum.Enum):
    STUCK_STALL = "stuck_stall"
    DROP_FLITS = "drop_flits"
    CORRUPT_DEST = "corrupt_dest"


class FaultInjector:
    """Wraps one stage with a fault activated from a given tick."""

    def __init__(self, stage: PipelineStage, kind: FaultKind,
                 from_tick: int = 0, corrupt_dest_to: int = 0):
        if from_tick < 0:
            raise ConfigurationError("from_tick must be >= 0")
        self.stage = stage
        self.kind = kind
        self.from_tick = from_tick
        self.corrupt_dest_to = corrupt_dest_to
        self.activations = 0
        self._original = stage.on_edge
        stage.on_edge = self._faulty_edge  # type: ignore[method-assign]
        # A faulted stage no longer honours the idle contract: keep it
        # firing every edge so the fault manifests at from_tick exactly.
        stage.wake()

    def heal(self) -> None:
        """Restore the stage's original behaviour."""
        self.stage.on_edge = self._original  # type: ignore[method-assign]
        self.stage.wake()

    def _faulty_edge(self, tick: int) -> None:
        if tick < self.from_tick:
            self._original(tick)
        else:
            self.activations += 1
            if self.kind is FaultKind.STUCK_STALL:
                self._stuck_stall(tick)
            elif self.kind is FaultKind.DROP_FLITS:
                self._drop_flits(tick)
            else:
                self._corrupt_dest(tick)
        # The delegated healthy edge (pre-fault, and inside CORRUPT_DEST)
        # may have put the stage to sleep; a faulted stage must keep
        # firing every edge, exactly like the naive loop does.
        self.stage.wake()

    def _stuck_stall(self, tick: int) -> None:
        stage = self.stage
        # Control outputs dead: never accept upstream, never present valid
        # data downstream. Whatever sits in the register is stuck there.
        stage.upstream.respond(False, tick)
        stage.downstream.drive(None, tick)
        stage.gating.record(False)

    def _drop_flits(self, tick: int) -> None:
        stage = self.stage
        # Acknowledge upstream as usual, but discard instead of storing.
        if stage.reg_valid and stage.downstream.accepted:
            stage.reg_valid = False
        if not stage.reg_valid and stage.upstream.valid:
            stage.upstream.respond(True, tick)  # eats the flit
        else:
            stage.upstream.respond(False, tick)
        stage.downstream.drive(stage.reg_flit if stage.reg_valid else None,
                               tick)

    def _corrupt_dest(self, tick: int) -> None:
        stage = self.stage
        self._original(tick)
        if stage.reg_valid and stage.reg_flit is not None \
                and stage.reg_flit.is_head \
                and stage.reg_flit.dest != self.corrupt_dest_to:
            stage.reg_flit = replace(stage.reg_flit,
                                     dest=self.corrupt_dest_to)
            # Deliberate override of the value the healthy logic drove
            # this tick, outside the multi-driver check.
            stage.downstream.force_drive(stage.reg_flit)


def inject_link_fault(network, kind: FaultKind, stage_index: int = 0,
                      from_tick: int = 0,
                      corrupt_dest_to: int = 0) -> FaultInjector:
    """Break one of a network's link pipeline stages."""
    if not network.link_stages:
        raise ConfigurationError(
            "network has no link stages to break (links too short)"
        )
    if not 0 <= stage_index < len(network.link_stages):
        raise ConfigurationError(f"no link stage {stage_index}")
    return FaultInjector(network.link_stages[stage_index], kind,
                         from_tick=from_tick,
                         corrupt_dest_to=corrupt_dest_to)
