"""Unit conventions and conversion helpers used throughout the library.

The whole library uses one consistent set of units:

* time        -- picoseconds (ps), as ``float``
* length      -- millimetres (mm), as ``float``
* frequency   -- gigahertz (GHz), as ``float``
* capacitance -- picofarads (pF)
* resistance  -- kiloohms (kOhm)
* voltage     -- volts (V)
* energy      -- femtojoules (fJ)
* power       -- milliwatts (mW)
* area        -- square millimetres (mm^2)

These combine conveniently: ``kOhm * pF = ns`` (so wire RC products are
converted with :data:`NS_PER_KOHM_PF`), and ``pF * V^2 = pJ``.

The behavioural simulator does not use physical time at all; it advances in
integer *ticks* of one half clock period (see :mod:`repro.sim.kernel`).
Helpers for converting between cycles, half-cycles and physical time given a
clock frequency live here too.
"""

from __future__ import annotations

PS_PER_NS = 1000.0
NS_PER_KOHM_PF = 1.0  # 1 kOhm * 1 pF = 1 ns
PS_PER_KOHM_PF = 1000.0  # ... = 1000 ps


def period_ps(frequency_ghz: float) -> float:
    """Clock period in ps for a frequency in GHz."""
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return 1000.0 / frequency_ghz


def half_period_ps(frequency_ghz: float) -> float:
    """Half clock period (one phase) in ps for a frequency in GHz."""
    return period_ps(frequency_ghz) / 2.0


def frequency_ghz(period: float) -> float:
    """Frequency in GHz for a period in ps."""
    if period <= 0.0:
        raise ValueError(f"period must be positive, got {period}")
    return 1000.0 / period


def frequency_from_half_period(half_period: float) -> float:
    """Frequency in GHz for a half period in ps."""
    return frequency_ghz(2.0 * half_period)


def cycles_to_ticks(cycles: float) -> int:
    """Convert clock cycles to simulator half-cycle ticks.

    Fractional half-cycles are rejected: the simulator's resolution is
    exactly one half period.
    """
    ticks = cycles * 2.0
    rounded = round(ticks)
    if abs(ticks - rounded) > 1e-9:
        raise ValueError(f"{cycles} cycles is not a whole number of half-cycles")
    return int(rounded)


def ticks_to_cycles(ticks: int) -> float:
    """Convert simulator half-cycle ticks to clock cycles."""
    return ticks / 2.0


def ticks_to_ps(ticks: int, frequency: float) -> float:
    """Physical duration of ``ticks`` half-cycles at ``frequency`` GHz."""
    return ticks * half_period_ps(frequency)


def energy_pj(capacitance_pf: float, voltage_v: float) -> float:
    """Switching energy C*V^2 in pJ for C in pF and V in volts."""
    return capacitance_pf * voltage_v * voltage_v


def power_mw(capacitance_pf: float, voltage_v: float, frequency: float,
             activity: float = 1.0) -> float:
    """Dynamic power ``alpha * C * V^2 * f`` in mW.

    C in pF, f in GHz, ``activity`` is the switching activity factor in
    [0, 1] (1.0 means the node toggles through a full charge/discharge each
    cycle, as a clock net does).
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity must be in [0, 1], got {activity}")
    return activity * capacitance_pf * voltage_v * voltage_v * frequency
