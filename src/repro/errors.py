"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class TopologyError(ConfigurationError):
    """A topology request cannot be satisfied (bad arity, port count, ...)."""


class TimingViolationError(ReproError):
    """A timing constraint is violated and the caller asked for strictness."""

    def __init__(self, message: str, violations: list | None = None):
        super().__init__(message)
        self.violations = violations if violations is not None else []


class SimulationError(ReproError):
    """The behavioural simulator detected an internal inconsistency."""


class ProtocolError(SimulationError):
    """The handshake protocol was violated (e.g. data changed before accept)."""


class RoutingError(SimulationError):
    """A flit could not be routed (unknown destination, converging path...)."""
