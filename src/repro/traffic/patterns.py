"""Spatial traffic patterns."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.base import TrafficGenerator


class UniformRandom(TrafficGenerator):
    """Every other port equally likely — the classic baseline pattern."""

    def pick_destination(self, src: int, rng: np.random.Generator) -> int:
        dest = int(rng.integers(0, self.ports - 1))
        return dest if dest < src else dest + 1


class NeighbourTraffic(TrafficGenerator):
    """Locality-weighted traffic: mostly talk to your sibling.

    With probability ``locality`` the destination is the sibling leaf
    (src XOR 1 in the binary-tree numbering — one 3x3 router away, the
    favourable case of the paper's Section 3 mapping argument); otherwise
    uniform random. This models "with proper application mapping, cores
    which communicate a lot will be clustered".
    """

    def __init__(self, ports: int, load: float, size_flits: int = 1,
                 locality: float = 0.8):
        super().__init__(ports, load, size_flits)
        if not 0.0 <= locality <= 1.0:
            raise ConfigurationError("locality must be in [0, 1]")
        self.locality = locality

    def pick_destination(self, src: int, rng: np.random.Generator) -> int:
        if rng.random() < self.locality:
            return src ^ 1
        dest = int(rng.integers(0, self.ports - 1))
        return dest if dest < src else dest + 1


class HotspotTraffic(TrafficGenerator):
    """A fraction of all traffic heads to a few hotspot ports."""

    def __init__(self, ports: int, load: float, size_flits: int = 1,
                 hotspots: tuple[int, ...] = (0,), fraction: float = 0.3):
        super().__init__(ports, load, size_flits)
        if not hotspots:
            raise ConfigurationError("need at least one hotspot")
        for h in hotspots:
            if not 0 <= h < ports:
                raise ConfigurationError(f"hotspot {h} out of range")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must be in [0, 1]")
        self.hotspots = hotspots
        self.fraction = fraction

    def pick_destination(self, src: int, rng: np.random.Generator) -> int:
        if rng.random() < self.fraction:
            candidates = [h for h in self.hotspots if h != src]
            if candidates:
                return candidates[int(rng.integers(0, len(candidates)))]
        dest = int(rng.integers(0, self.ports - 1))
        return dest if dest < src else dest + 1


def bit_complement(src: int, ports: int) -> int:
    """dest = ~src over log2(ports) bits."""
    return (ports - 1) ^ src


def bit_reverse(src: int, ports: int) -> int:
    """dest = bit-reversed src over log2(ports) bits."""
    bits = (ports - 1).bit_length()
    out = 0
    for i in range(bits):
        if src & (1 << i):
            out |= 1 << (bits - 1 - i)
    return out


def transpose(src: int, ports: int) -> int:
    """dest = src with upper/lower halves of the address swapped."""
    bits = (ports - 1).bit_length()
    half = bits // 2
    low = src & ((1 << half) - 1)
    high = src >> half
    return (low << (bits - half)) | high


class PermutationTraffic(TrafficGenerator):
    """A fixed address permutation (bit-complement/reverse/transpose).

    Ports mapped to themselves by the permutation simply stay silent.
    """

    PERMUTATIONS = {
        "bit_complement": bit_complement,
        "bit_reverse": bit_reverse,
        "transpose": transpose,
    }

    def __init__(self, ports: int, load: float, size_flits: int = 1,
                 permutation: str = "bit_complement"):
        super().__init__(ports, load, size_flits)
        if ports & (ports - 1):
            raise ConfigurationError("permutations need power-of-two ports")
        if permutation not in self.PERMUTATIONS:
            raise ConfigurationError(f"unknown permutation {permutation!r}")
        self.permutation = permutation
        self._mapping = self.PERMUTATIONS[permutation]

    def injection_probability(self, src: int, cycle: int) -> float:
        if self._mapping(src, self.ports) == src:
            return 0.0
        return super().injection_probability(src, cycle)

    def pick_destination(self, src: int, rng: np.random.Generator) -> int:
        return self._mapping(src, self.ports)
