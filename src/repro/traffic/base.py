"""Traffic primitives: injections, the generator protocol, the driver."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.noc.packet import Packet


@dataclass(frozen=True)
class Injection:
    """One packet to inject.

    Attributes:
        cycle: injection cycle (converted to ticks by the driver).
        src / dest: leaf addresses.
        size_flits: packet length in flits (>= 1).
    """

    cycle: int
    src: int
    dest: int
    size_flits: int = 1

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigurationError("cycle must be >= 0")
        if self.size_flits < 1:
            raise ConfigurationError("packets are at least one flit")
        if self.src == self.dest:
            raise ConfigurationError("src == dest traffic never enters the NoC")

    def to_packet(self) -> Packet:
        payload = list(range(self.size_flits)) if self.size_flits > 1 else []
        return Packet(src=self.src, dest=self.dest, payload=payload)


class TrafficGenerator(abc.ABC):
    """Generates a finite injection schedule.

    ``load`` is the offered traffic in flits per cycle per port (the
    standard NoC load metric); subclasses translate it into per-cycle
    Bernoulli injection decisions.
    """

    def __init__(self, ports: int, load: float, size_flits: int = 1):
        if ports < 2:
            raise ConfigurationError("need >= 2 ports for traffic")
        if not 0.0 < load <= 1.0:
            raise ConfigurationError(f"load must be in (0, 1], got {load}")
        if size_flits < 1:
            raise ConfigurationError("size_flits must be >= 1")
        self.ports = ports
        self.load = load
        self.size_flits = size_flits

    @abc.abstractmethod
    def pick_destination(self, src: int, rng: np.random.Generator) -> int:
        """Choose a destination != src."""

    def injection_probability(self, src: int, cycle: int) -> float:
        """Per-cycle packet-injection probability at a port.

        ``load`` counts flits, so the packet rate is load / size.
        """
        return self.load / self.size_flits

    def generate(self, cycles: int, rng: np.random.Generator) -> list[Injection]:
        """The full injection schedule for ``cycles`` cycles."""
        if cycles < 0:
            raise ConfigurationError("cycles must be >= 0")
        schedule = []
        for cycle in range(cycles):
            for src in range(self.ports):
                if rng.random() < self.injection_probability(src, cycle):
                    dest = self.pick_destination(src, rng)
                    schedule.append(Injection(
                        cycle=cycle, src=src, dest=dest,
                        size_flits=self.size_flits,
                    ))
        return schedule


def apply_traffic(network, schedule: list[Injection],
                  run_cycles: int | None = None,
                  drain_ticks: int = 200_000) -> None:
    """Drive a network with a schedule, then drain it.

    Injections are submitted just-in-time (at their cycle) so source queues
    reflect genuine congestion, not pre-loading.
    """
    by_cycle: dict[int, list[Injection]] = {}
    last_cycle = 0
    for injection in schedule:
        by_cycle.setdefault(injection.cycle, []).append(injection)
        last_cycle = max(last_cycle, injection.cycle)
    horizon = last_cycle + 1 if run_cycles is None else run_cycles
    for cycle in range(horizon):
        for injection in by_cycle.get(cycle, []):
            network.send(injection.to_packet())
        network.run_ticks(2)
    network.drain(max_ticks=drain_ticks)
