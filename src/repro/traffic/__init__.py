"""Traffic generation: synthetic workloads for the evaluation.

Generators produce :class:`Injection` events (cycle, src, dest, size) ahead
of simulation, from an explicit numpy ``Generator`` so every run is
reproducible. Patterns cover the paper's motivation: uniform random,
locality-exploiting neighbour traffic (the application-mapping argument of
Section 3), hotspots, permutations, and the bursty on-off traffic that
drives the clock-gating claim of Section 5.
"""

from repro.traffic.base import Injection, TrafficGenerator, apply_traffic
from repro.traffic.patterns import (
    UniformRandom,
    NeighbourTraffic,
    HotspotTraffic,
    PermutationTraffic,
    bit_complement,
    bit_reverse,
    transpose,
)
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.trace import TraceRecorder, replay_trace

__all__ = [
    "Injection",
    "TrafficGenerator",
    "apply_traffic",
    "UniformRandom",
    "NeighbourTraffic",
    "HotspotTraffic",
    "PermutationTraffic",
    "bit_complement",
    "bit_reverse",
    "transpose",
    "BurstyTraffic",
    "TraceRecorder",
    "replay_trace",
]
