"""Bursty on-off traffic.

"Traffic is expected to be of a bursty nature. This means that the network
will lay idle for long periods, and power consumption during idleness is of
a major concern" (paper Section 5) — the workload behind the clock-gating
claim. Each source is a two-state Markov chain (ON/OFF) with geometric
dwell times; while ON it injects at ``peak_load``, while OFF it is silent.
Average load = peak_load * on_fraction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.base import Injection, TrafficGenerator


class BurstyTraffic(TrafficGenerator):
    """Markov-modulated on-off traffic with uniform-random destinations."""

    def __init__(self, ports: int, peak_load: float, size_flits: int = 1,
                 mean_burst_cycles: float = 20.0,
                 mean_idle_cycles: float = 80.0):
        super().__init__(ports, peak_load, size_flits)
        if mean_burst_cycles <= 0.0 or mean_idle_cycles <= 0.0:
            raise ConfigurationError("burst/idle lengths must be positive")
        self.mean_burst_cycles = mean_burst_cycles
        self.mean_idle_cycles = mean_idle_cycles

    @property
    def on_fraction(self) -> float:
        return self.mean_burst_cycles / (
            self.mean_burst_cycles + self.mean_idle_cycles
        )

    @property
    def average_load(self) -> float:
        return self.load * self.on_fraction

    def pick_destination(self, src: int, rng: np.random.Generator) -> int:
        dest = int(rng.integers(0, self.ports - 1))
        return dest if dest < src else dest + 1

    def generate(self, cycles: int, rng: np.random.Generator) -> list[Injection]:
        if cycles < 0:
            raise ConfigurationError("cycles must be >= 0")
        p_off_to_on = 1.0 / self.mean_idle_cycles
        p_on_to_off = 1.0 / self.mean_burst_cycles
        # Start each source in its stationary distribution.
        state_on = rng.random(self.ports) < self.on_fraction
        schedule = []
        for cycle in range(cycles):
            flips = rng.random(self.ports)
            for src in range(self.ports):
                if state_on[src]:
                    if flips[src] < p_on_to_off:
                        state_on[src] = False
                else:
                    if flips[src] < p_off_to_on:
                        state_on[src] = True
                if state_on[src] and rng.random() < self.load / self.size_flits:
                    schedule.append(Injection(
                        cycle=cycle, src=src,
                        dest=self.pick_destination(src, rng),
                        size_flits=self.size_flits,
                    ))
        return schedule
