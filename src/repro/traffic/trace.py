"""Traffic traces: record a schedule to a portable form and replay it.

Traces make experiments repeatable across network variants: the same
injection sequence can be replayed against a binary tree, a quad tree and
the mesh baseline for a like-for-like comparison.

The on-disk form is JSON lines with a versioned header: the first line
names the schema and its version, every following line is one record.
Files written before the header existed (plain record lines) still load;
a header naming a *different* version is a loud
:class:`~repro.errors.ConfigurationError` so a format change can never be
silently misread. The header machinery is shared with the accelerator
trace format (:mod:`repro.accel.trace`), which mandates its header.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.traffic.base import Injection

#: Schema name and current version of the injection-trace format.
TRACE_SCHEMA = "repro.traffic.trace"
TRACE_VERSION = 1


def iter_trace_lines(path: str | Path) -> Iterator[tuple[int, dict]]:
    """Yield ``(line_number, record)`` for every non-blank JSONL line.

    Malformed JSON raises a :class:`ConfigurationError` naming the file
    and the 1-based line number. Shared by every trace loader so the
    error shape is uniform.
    """
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}: bad trace line {line_number}: {exc}"
                ) from exc
            yield line_number, record


def check_trace_header(header: dict, path: str | Path, schema: str,
                       version: int) -> None:
    """Validate a parsed header line against the expected schema/version.

    Raises :class:`ConfigurationError` naming the file, the schema, and
    the found/expected versions — the shared contract of every versioned
    trace format in the repo.
    """
    found_schema = header.get("schema")
    if found_schema != schema:
        raise ConfigurationError(
            f"{path}: trace schema {found_schema!r} is not {schema!r}"
        )
    found = header.get("version")
    if found != version:
        raise ConfigurationError(
            f"{path}: unsupported {schema} version: found {found!r}, "
            f"expected {version}"
        )


def trace_header(schema: str, version: int, **extra: Any) -> dict:
    """The header record a versioned trace file starts with."""
    return {"schema": schema, "version": version, **extra}


class TraceRecorder:
    """Accumulates injections and serialises them to JSON lines."""

    def __init__(self) -> None:
        self.injections: list[Injection] = []

    def record(self, injection: Injection) -> None:
        self.injections.append(injection)

    def extend(self, injections: list[Injection]) -> None:
        self.injections.extend(injections)

    def save(self, path: str | Path) -> None:
        with open(path, "w") as handle:
            handle.write(json.dumps(
                trace_header(TRACE_SCHEMA, TRACE_VERSION)) + "\n")
            for injection in self.injections:
                handle.write(json.dumps({
                    "cycle": injection.cycle,
                    "src": injection.src,
                    "dest": injection.dest,
                    "size_flits": injection.size_flits,
                }) + "\n")


def replay_trace(path: str | Path) -> list[Injection]:
    """Load a schedule saved by :class:`TraceRecorder`.

    Accepts both the current versioned form (header line first) and
    legacy headerless files; a header with the wrong schema name or
    version is rejected loudly.
    """
    injections = []
    first = True
    for line_number, record in iter_trace_lines(path):
        if first:
            first = False
            if "schema" in record:
                check_trace_header(record, path, TRACE_SCHEMA,
                                   TRACE_VERSION)
                continue
        try:
            injections.append(Injection(
                cycle=record["cycle"], src=record["src"],
                dest=record["dest"], size_flits=record["size_flits"],
            ))
        except KeyError as exc:
            raise ConfigurationError(
                f"{path}: bad trace line {line_number}: "
                f"missing key {exc}"
            ) from exc
    return injections
