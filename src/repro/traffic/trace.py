"""Traffic traces: record a schedule to a portable form and replay it.

Traces make experiments repeatable across network variants: the same
injection sequence can be replayed against a binary tree, a quad tree and
the mesh baseline for a like-for-like comparison.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.traffic.base import Injection


class TraceRecorder:
    """Accumulates injections and serialises them to JSON lines."""

    def __init__(self) -> None:
        self.injections: list[Injection] = []

    def record(self, injection: Injection) -> None:
        self.injections.append(injection)

    def extend(self, injections: list[Injection]) -> None:
        self.injections.extend(injections)

    def save(self, path: str | Path) -> None:
        with open(path, "w") as handle:
            for injection in self.injections:
                handle.write(json.dumps({
                    "cycle": injection.cycle,
                    "src": injection.src,
                    "dest": injection.dest,
                    "size_flits": injection.size_flits,
                }) + "\n")


def replay_trace(path: str | Path) -> list[Injection]:
    """Load a schedule saved by :class:`TraceRecorder`."""
    injections = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                injections.append(Injection(
                    cycle=record["cycle"], src=record["src"],
                    dest=record["dest"], size_flits=record["size_flits"],
                ))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ConfigurationError(
                    f"bad trace line {line_number}: {exc}"
                ) from exc
    return injections
